"""The incident manager: the online serving side of §6.

In production, "the online component provides a REST interface and is
activated once an incident is created in the provider's incident
management system: the incident manager makes calls to the online
component, which runs the desired models and returns a prediction."
Crucially, the deployed Scout ran in *suggestion mode*: "we do not take
action based on the output of the Scout but rather observe what would
have happened if it was used for routing decisions."

:class:`IncidentManager` is that integration point for the synthetic
cloud: Scouts register as gate-keepers, incoming incidents fan out to
them, answers compose through a Scout Master, and every decision —
acted on or merely suggested — lands in an auditable log.  A
:class:`~repro.core.drift.DriftMonitor` per Scout watches accuracy as
incidents resolve.

Because a Scout must never make routing *worse* than the legacy
process, the fan-out is failure-isolated: a Scout that raises, blows
its deadline, or sits behind an open circuit breaker degrades to an
*abstain* answer with the cause recorded in a :class:`ScoutCallOutcome`
— one bad gate-keeper can neither take down ``handle()`` nor block the
other teams' verdicts.

The manager is also the pipeline's observability root: it owns an
:class:`~repro.obs.Observability` (driven by the same injectable
clock), opens a ``serve.handle`` span per incident with one
``scout.call`` child per team, counts every :class:`CallStatus`,
records call latencies in a histogram, and emits an event for every
circuit-breaker transition.  Registered Scouts (and their feature
builders) inherit the manager's observability, so one
``manager.obs.render()`` exposes the whole pipeline.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from enum import Enum

from ..core.drift import DriftMonitor
from ..core.explain import Explanation
from ..core.scout import Scout, ScoutPrediction
from ..core.selector import Route
from ..incidents.incident import Incident
from ..ml.base import resolve_n_jobs
from ..obs import Observability
from ..simulation.scout_master import ScoutAnswer, ScoutMaster
from ..simulation.teams import TeamRegistry
from .breaker import BreakerPolicy, BreakerState, CircuitBreaker
from .retry import RetryPolicy

__all__ = [
    "CallStatus",
    "ScoutCallOutcome",
    "ServingDecision",
    "ScoutServiceStats",
    "ShadowObservation",
    "IncidentManager",
]


class CallStatus(str, Enum):
    """How one per-Scout call ended."""

    OK = "ok"
    ERROR = "error"
    TIMEOUT = "timeout"
    BREAKER_OPEN = "breaker_open"


@dataclass(frozen=True)
class ScoutCallOutcome:
    """The serving-layer verdict on one per-Scout call.

    ``latency_seconds`` is None when the Scout was never invoked (a
    breaker-open skip): a skipped call has *no* latency, and recording
    ``0.0`` would be indistinguishable from an instant answer in any
    downstream aggregation.
    """

    team: str
    status: CallStatus
    latency_seconds: float | None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status is CallStatus.OK

    @property
    def invoked(self) -> bool:
        """Did this call actually reach the Scout?"""
        return self.status is not CallStatus.BREAKER_OPEN


@dataclass(frozen=True)
class ServingDecision:
    """One logged routing decision.

    ``trace_id`` keys into the manager's trace exporter
    (``manager.obs.trace.trace(decision.trace_id)``) and
    ``stage_latencies`` is the per-stage breakdown of
    ``latency_seconds``: one ``("scout.<team>", seconds)`` entry per
    invoked Scout plus a ``("compose", seconds)`` entry for the Scout
    Master composition.  ``model_epochs`` stamps, per team, which model
    epoch answered this incident — the audit trail a zero-downtime
    :meth:`IncidentManager.swap` leaves behind (in-flight incidents at
    swap time carry the old epoch, later arrivals the new one; a call
    degraded because its team was unregistered mid-flight stamps 0).
    """

    incident_id: int
    suggested_team: str | None
    answers: tuple[ScoutAnswer, ...]
    predictions: tuple[ScoutPrediction, ...]
    latency_seconds: float
    acted: bool
    outcomes: tuple[ScoutCallOutcome, ...] = ()
    trace_id: str | None = None
    stage_latencies: tuple[tuple[str, float], ...] = ()
    model_epochs: tuple[tuple[str, int], ...] = ()

    @property
    def degraded(self) -> bool:
        """Did any Scout fail to answer healthily for this incident?"""
        return any(not outcome.ok for outcome in self.outcomes)


@dataclass
class ScoutServiceStats:
    """Per-Scout serving counters."""

    team: str
    calls: int = 0
    said_yes: int = 0
    said_no: int = 0
    abstained: int = 0
    errors: int = 0
    timeouts: int = 0
    breaker_open_skips: int = 0
    total_latency: float = 0.0
    breaker_state: str = BreakerState.CLOSED.value

    @property
    def invoked(self) -> int:
        """Calls that actually reached the Scout (breaker skips don't)."""
        return self.calls - self.breaker_open_skips

    @property
    def mean_latency(self) -> float:
        """Mean latency over invoked calls only.

        ``total_latency`` accumulates exactly the outcomes that reached
        the Scout (OK, ERROR, TIMEOUT — the same set
        ``scout_call_latency_seconds`` observes), so the numerator and
        the ``invoked`` denominator always agree.
        """
        return self.total_latency / self.invoked if self.invoked else 0.0

    @property
    def availability(self) -> float:
        """Fraction of fan-outs this Scout answered healthily."""
        if not self.calls:
            return 1.0
        faulted = self.errors + self.timeouts + self.breaker_open_skips
        return (self.calls - faulted) / self.calls


def _abstain(incident_id: int, note: str) -> ScoutPrediction:
    """The degraded answer: fall back to the legacy routing process."""
    return ScoutPrediction(
        incident_id,
        responsible=None,
        confidence=0.0,
        route=Route.FALLBACK,
        explanation=Explanation(notes=[note]),
    )


def _route_name(prediction: ScoutPrediction) -> str:
    """The pipeline route as a plain string (tolerant of test doubles)."""
    route = getattr(prediction, "route", None)
    return getattr(route, "value", str(route))


@dataclass(frozen=True)
class ShadowObservation:
    """One side-by-side comparison of a shadow candidate vs. production.

    Shadow serving (:meth:`IncidentManager.register_shadow`) runs a
    candidate Scout on the same live incidents as the team's production
    model, *after* the production call and with zero influence on the
    routing decision.  Each observation records both verdicts as plain
    scalars (not full predictions — the shadow log is an analysis
    input, not an audit log) so :func:`repro.analysis.shadow_report`
    can build a promotion report from it.
    """

    incident_id: int
    team: str
    primary_epoch: int
    primary_status: CallStatus
    primary_responsible: bool | None
    primary_confidence: float
    primary_route: str
    shadow_status: CallStatus
    shadow_responsible: bool | None
    shadow_confidence: float
    shadow_route: str | None
    shadow_latency_seconds: float
    shadow_error: str | None = None

    @property
    def agrees(self) -> bool:
        """Did the healthy shadow reach the production verdict?"""
        return (
            self.shadow_status is CallStatus.OK
            and self.shadow_responsible == self.primary_responsible
        )

    @property
    def diff(self) -> bool:
        """A healthy shadow answer that *differs* from production.

        Shadow errors/timeouts are not diffs (they are counted
        separately); only a successful candidate disagreeing counts.
        """
        return (
            self.shadow_status is CallStatus.OK
            and self.shadow_responsible != self.primary_responsible
        )


@dataclass
class _CallResult:
    """One per-Scout call's full compute-phase output.

    Carries the epoch stamp of the model that answered and the shadow
    observation (when a shadow is registered for the team), so the
    commit phase can account for everything in arrival order.
    """

    team: str
    prediction: ScoutPrediction
    outcome: ScoutCallOutcome
    epoch: int
    shadow: ShadowObservation | None = None


@dataclass
class _StagedDecision:
    """One incident's computed (but not yet committed) decision.

    The concurrent batch pipeline splits serving in two: the *compute*
    phase (Scout fan-out + composition — everything expensive) runs on
    pool workers, while the *commit* phase (stats accounting, metric
    increments, the audit-log append) runs on the calling thread in
    arrival order.  That split is what keeps the decision log, stats,
    and rendered exposition byte-identical to the serial path no matter
    how the workers interleave.
    """

    incident: Incident
    root: object  # the incident's ``serve.handle`` span
    results: list[_CallResult]
    answers: list[ScoutAnswer]
    suggested: str | None
    compose_seconds: float
    latency_seconds: float


class IncidentManager:
    """Registers Scouts and serves routing suggestions for incidents.

    Parameters
    ----------
    registry:
        The team universe (for the Scout Master's dependency logic).
    suggestion_mode:
        When True (the deployed default), decisions are logged but
        ``acted`` is False — what-if analysis without routing risk.
    confidence_floor:
        Minimum confidence for a "yes" to count in composition.
    scout_deadline:
        Per-Scout wall-clock budget in seconds (measured on ``clock``).
        A call that finishes over budget is recorded as a ``timeout``
        and its answer degrades to an abstain — a stalled Scout cannot
        poison the composition.  None disables the deadline.
    breaker:
        Circuit-breaker policy applied per Scout (None disables
        breakers).  After ``failure_threshold`` consecutive
        errors/timeouts the Scout is skipped outright until a cool-down
        elapses, then probed half-open.
    retry:
        When set, threaded to each registered :class:`Scout` (via its
        ``retry_policy`` attribute) so transient monitoring-pull
        failures inside ``predict`` retry with deterministic backoff.
    batch_workers:
        Default concurrency for :meth:`handle_batch`: how many
        incidents are in flight at once.  ``1`` (the default) serves
        the batch serially; ``None`` or ``< 1`` uses all cores.  The
        workers come from a persistent, lazily created pool — call
        :meth:`close` (or use the manager as a context manager) to
        shut it down.
    cache_ttl:
        When set, threaded into each registered Scout's feature
        builder (together with the manager's clock) as a TTL-window
        monitoring cache: pulls survive across incidents for
        ``cache_ttl`` clock-seconds, so a burst of correlated
        incidents shares its monitoring queries instead of re-issuing
        them per incident.  None (the default) keeps the seed
        per-incident cache lifetime.
    shards:
        When True, ``enable_shards()`` is called on every registered
        Scout's monitoring store: queries are served from columnar
        per-(dataset, component) chunks — byte-identical, but repeat
        pulls become array slices.  Stores the manager sharded are
        un-sharded again by :meth:`close`.
    shard_memmap_dir:
        Optional directory for memmap-backed series chunks (shared
        read-only across processes); implies nothing unless ``shards``
        is set.
    incremental:
        When True, every registered Scout's builder is switched to the
        incremental sliding-window feature engine (O(delta) window
        advance; byte-identical vectors — see ``core.features``).
        Default False keeps the seed full-recompute path.
    obs:
        The observability sink (metrics registry + tracer).  Defaults
        to a fresh :class:`~repro.obs.Observability` on the manager's
        ``clock``, so instrumentation is always on and — under a fake
        clock — bit-exact.
    """

    def __init__(
        self,
        registry: TeamRegistry,
        suggestion_mode: bool = True,
        confidence_floor: float = 0.5,
        clock=time.perf_counter,
        n_jobs: int | None = 1,
        scout_deadline: float | None = None,
        breaker: BreakerPolicy | None = BreakerPolicy(),
        retry: RetryPolicy | None = None,
        batch_workers: int | None = 1,
        cache_ttl: float | None = None,
        obs: Observability | None = None,
        shards: bool = False,
        shard_memmap_dir: str | None = None,
        incremental: bool = False,
    ) -> None:
        self.registry = registry
        self.suggestion_mode = suggestion_mode
        self.n_jobs = n_jobs
        self.scout_deadline = scout_deadline
        self.breaker_policy = breaker
        self.retry_policy = retry
        self.batch_workers = batch_workers
        self.cache_ttl = cache_ttl
        self.shards = shards
        self.shard_memmap_dir = shard_memmap_dir
        self.incremental = incremental
        # Stores this manager itself sharded (so close() can undo it
        # without touching stores sharded by someone else).
        self._sharded_stores: list = []
        self.obs = obs if obs is not None else Observability(clock=clock)
        self._master = ScoutMaster(registry, confidence_floor=confidence_floor)
        self._scouts: dict[str, Scout] = {}
        # Shadow candidates run side-by-side on live traffic without
        # touching routing; their comparisons land in _shadow_log at
        # commit time (arrival order, so batch mode stays
        # byte-identical to serial).
        self._shadows: dict[str, Scout] = {}
        self._shadow_log: list[ShadowObservation] = []
        # Per-team model epoch: 1 at register, bumped by swap().  The
        # stamp every decision carries, so an auditor can tell which
        # model generation answered.
        self._epochs: dict[str, int] = {}
        self._stats: dict[str, ScoutServiceStats] = {}
        self._monitors: dict[str, DriftMonitor] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._breaker_seen: dict[str, str] = {}
        self._log: list[ServingDecision] = []
        self._served_ids: set[int] = set()
        self._resolved_indices: set[int] = set()
        # incident_id -> positions in _log, appended at commit time so
        # resolve() is O(decisions for that incident), not O(len(_log)):
        # the full-log scan was quadratic over a stream of resolutions.
        self._log_indices: dict[int, list[int]] = {}
        # Set by close(): shards were dropped but the manager contract
        # says it stays usable, so the next serve lazily re-shards
        # instead of silently taking the slow unsharded path forever.
        self._needs_reshard = False
        self._clock = clock
        # The persistent worker pool (lazily created, grown on demand,
        # shut down by close()).  It runs per-Scout fan-out calls in
        # serial handle() *and* per-incident _decide() tasks in batch
        # mode — batch workers call their Scouts inline rather than
        # re-submitting to the pool, so the two uses can never deadlock
        # against each other.
        self._pool: ThreadPoolExecutor | None = None
        self._pool_size = 0
        self._pool_lock = threading.Lock()
        # Serializes the commit phase (stats, metrics, log append) so
        # concurrent batch serving produces the same accounting as the
        # serial path.
        self._commit_lock = threading.Lock()
        # One lock per registered Scout: a Scout's predict() (and its
        # builder memos, and its breaker) is single-threaded even when
        # several in-flight incidents fan out to the same team.
        self._team_locks: dict[str, threading.Lock] = {}
        metrics = self.obs.metrics
        self._m_calls = metrics.counter(
            "scout_calls_total",
            "Per-Scout call outcomes by CallStatus.",
            labels=("team", "status"),
        )
        self._m_latency = metrics.histogram(
            "scout_call_latency_seconds",
            "Latency of calls that reached the Scout (OK/ERROR/TIMEOUT).",
            labels=("team",),
        )
        self._m_incidents = metrics.counter(
            "serving_incidents_total", "Incidents handled by the manager."
        )
        self._m_suggestions = metrics.counter(
            "serving_suggestions_total",
            "Decisions that suggested a responsible team.",
        )
        self._m_model_abstains = metrics.counter(
            "serving_model_abstains_total",
            "Healthy calls whose Scout abstained (model fallback).",
            labels=("team",),
        )
        self._m_degraded = metrics.counter(
            "serving_degraded_incidents_total",
            "Incidents with at least one unhealthy Scout call.",
        )
        self._m_handle_latency = metrics.histogram(
            "serving_handle_latency_seconds",
            "End-to-end fan-out + composition latency per incident.",
        )
        self._m_transitions = metrics.counter(
            "scout_breaker_transitions_total",
            "Circuit-breaker state transitions observed around calls.",
            labels=("team", "from_state", "to_state"),
        )
        self._m_breaker_state = metrics.gauge(
            "scout_breaker_state",
            "Breaker state per team (0=closed, 1=half_open, 2=open).",
            labels=("team",),
        )
        self._m_model_epoch = metrics.gauge(
            "scout_model_epoch",
            "Serving model generation per team (1 at register, +1 per swap).",
            labels=("team",),
        )
        self._m_swaps = metrics.counter(
            "scout_swaps_total",
            "Zero-downtime model hot-swaps applied per team.",
            labels=("team",),
        )
        self._m_shadow_calls = metrics.counter(
            "scout_shadow_calls_total",
            "Shadow-candidate calls by outcome status.",
            labels=("team", "status"),
        )
        self._m_shadow_diffs = metrics.counter(
            "scout_shadow_diffs_total",
            "Healthy shadow answers that differ from production.",
            labels=("team",),
        )
        self._m_shadow_latency = metrics.histogram(
            "scout_shadow_latency_seconds",
            "Latency of shadow-candidate calls (never on the serving path).",
            labels=("team",),
        )

    # -- registration ------------------------------------------------------

    def register(self, scout: Scout, *, lint: bool = False) -> None:
        """Register a team's Scout as its gate-keeper.

        ``lint=True`` runs the config analyzer against the Scout's own
        monitoring store before registration and raises
        :class:`~repro.lint.LintError` on any ERROR finding, so a
        misconfigured Scout never goes live.
        """
        if scout.team not in self.registry:
            raise ValueError(f"unknown team: {scout.team!r}")
        if scout.team in self._scouts:
            raise ValueError(
                f"{scout.team} already has a registered Scout "
                "(use swap() to replace it without a serving gap)"
            )
        if lint:
            self._lint_preflight(scout)
        self._prepare_scout(scout)
        self._scouts[scout.team] = scout
        self._team_locks[scout.team] = threading.Lock()
        self._epochs[scout.team] = 1
        self._m_model_epoch.set(1, team=scout.team)
        self._stats[scout.team] = ScoutServiceStats(team=scout.team)
        self._monitors[scout.team] = DriftMonitor()
        if self.breaker_policy is not None:
            self._breakers[scout.team] = CircuitBreaker(
                self.breaker_policy, clock=self._clock
            )
            self._breaker_seen[scout.team] = BreakerState.CLOSED.value
            self._m_breaker_state.set(0, team=scout.team)

    def _lint_preflight(self, scout: Scout) -> None:
        from ..lint import lint_config, require_clean

        store = getattr(getattr(scout, "builder", None), "store", None)
        require_clean(lint_config(scout.config, store))

    def _prepare_scout(self, scout: Scout) -> None:
        """Thread the manager's serving policies into one Scout.

        Shared by :meth:`register`, :meth:`swap`, and
        :meth:`register_shadow` so a replacement or shadow model serves
        under exactly the policies the original did.
        """
        if (
            self.retry_policy is not None
            and getattr(scout, "retry_policy", False) is None
        ):
            # Thread the manager's retry policy into the Scout's
            # monitoring pulls unless the Scout brought its own.
            scout.retry_policy = self.retry_policy
        if getattr(scout, "obs", False) is None:
            # Same pattern for observability: the Scout's stage spans
            # and counters land in the manager's registry unless the
            # Scout brought its own sink.
            scout.obs = self.obs
        builder = getattr(scout, "builder", None)
        if builder is not None and getattr(builder, "obs", False) is None:
            builder.obs = self.obs
        if (
            self.cache_ttl is not None
            and builder is not None
            and getattr(builder, "cache_ttl", False) is None
        ):
            # Thread the TTL-window cache policy into the builder
            # unless it brought its own — together with the manager's
            # clock, so fake-clock eviction tests are exact.
            builder.cache_ttl = self.cache_ttl
            if getattr(builder, "clock", False) is None:
                builder.clock = self._clock
        if self.incremental and builder is not None:
            builder.incremental = True
        if self.shards and builder is not None:
            self._shard_builder(builder)

    def swap(self, scout: Scout, *, lint: bool = False) -> int:
        """Hot-swap a team's Scout with zero serving downtime.

        The replacement is epoch-stamped: the swap waits on the team's
        own lock, so a call already in ``predict`` finishes on the old
        model (its decision carries the old epoch), while every call
        acquiring the lock afterwards sees the new one.  Nothing is
        shed and no fan-out ever observes a missing team — the
        replacement is a single reference assignment under the locks
        the serving path already takes.

        Serving stats and breaker-transition history continue across
        the swap (they describe the *service*); the drift monitor and
        the breaker's consecutive-failure count reset (they describe
        the *model*).  Returns the new epoch, visible as
        ``scout_model_epoch`` and on every subsequent decision's
        ``model_epochs`` stamp.
        """
        team = scout.team
        if team not in self._scouts:
            raise ValueError(
                f"no registered Scout for {team!r}; swap() replaces a "
                "live model — use register() first"
            )
        if lint:
            self._lint_preflight(scout)
        self._prepare_scout(scout)
        team_lock = self._team_locks[team]
        # Same team-then-commit order unregister() uses (the serving
        # path never holds both), so a swap can land mid-batch without
        # deadlocking or tearing half-committed accounting.
        with team_lock:
            with self._commit_lock:
                self._scouts[team] = scout
                epoch = self._epochs.get(team, 1) + 1
                self._epochs[team] = epoch
                self._monitors[team] = DriftMonitor()
                if self.breaker_policy is not None:
                    self._breakers[team] = CircuitBreaker(
                        self.breaker_policy, clock=self._clock
                    )
                self._m_model_epoch.set(epoch, team=team)
                self._m_swaps.inc(1, team=team)
        self._prune_sharded_stores()
        return epoch

    # -- shadow serving ----------------------------------------------------

    def register_shadow(self, scout: Scout, *, lint: bool = False) -> None:
        """Run a candidate Scout side-by-side with the team's live one.

        The shadow is called on every incident the production model is
        (after it, under the same team lock, so per-team serving stays
        single-threaded), its verdict is compared and logged, and the
        routing decision is **never** affected — shadow predictions do
        not enter composition, stats, or the primary latency metrics.
        Shadow failures are isolated exactly like production failures.

        See :func:`repro.analysis.shadow_report` for turning the
        accumulated :attr:`shadow_log` into a promotion report, and
        :meth:`promote_shadow` for the swap that concludes a successful
        evaluation.
        """
        team = scout.team
        if team not in self._scouts:
            raise ValueError(
                f"no registered Scout for {team!r}; a shadow needs a "
                "production model to be compared against"
            )
        if lint:
            self._lint_preflight(scout)
        self._prepare_scout(scout)
        with self._team_locks[team]:
            self._shadows[team] = scout

    def unregister_shadow(self, team: str) -> None:
        """Stop shadowing ``team`` (accumulated observations remain)."""
        team_lock = self._team_locks.get(team)
        if team_lock is None:
            self._shadows.pop(team, None)
        else:
            with team_lock:
                self._shadows.pop(team, None)
        self._prune_sharded_stores()

    def promote_shadow(self, team: str) -> int:
        """Swap ``team``'s shadow candidate into production.

        The concluding step of a shadow evaluation: the candidate stops
        shadowing and replaces the live model via :meth:`swap` (new
        epoch, drift/breaker reset, zero downtime).  Returns the new
        epoch.
        """
        shadow = self._shadows.get(team)
        if shadow is None:
            raise ValueError(f"no shadow registered for {team!r}")
        with self._team_locks[team]:
            self._shadows.pop(team, None)
        return self.swap(shadow)

    @property
    def shadow_teams(self) -> list[str]:
        return sorted(self._shadows)

    @property
    def shadow_log(self) -> list[ShadowObservation]:
        """Every shadow comparison, in commit (arrival) order."""
        return list(self._shadow_log)

    def model_epoch(self, team: str) -> int:
        """The serving model generation for ``team`` (1 = original)."""
        epoch = self._epochs.get(team)
        if epoch is None:
            raise KeyError(f"no registered Scout for {team!r}")
        return epoch

    def _shard_builder(self, builder) -> None:
        """Enable columnar shards on one builder's store (idempotent)."""
        store = getattr(builder, "store", None)
        # Unwrap fault-injection shims: sharding (and the obs
        # attribute below) belongs to the real store, not the
        # wrapper — setattr on the wrapper would just shadow the
        # inner store's property.
        store = getattr(store, "inner", store)
        if store is not None and hasattr(store, "enable_shards"):
            if not store.shards_enabled:
                store.enable_shards(memmap_dir=self.shard_memmap_dir)
                if not any(s is store for s in self._sharded_stores):
                    self._sharded_stores.append(store)
            if getattr(store, "obs", False) is None:
                store.obs = self.obs

    def _live_stores(self) -> list:
        """The (unwrapped) stores some live primary or shadow uses."""
        stores = []
        for scout in list(self._scouts.values()) + list(
            self._shadows.values()
        ):
            builder = getattr(scout, "builder", None)
            store = getattr(builder, "store", None)
            store = getattr(store, "inner", store)
            if store is not None:
                stores.append(store)
        return stores

    def _prune_sharded_stores(self) -> None:
        """Drop shard memory for stores no registered model uses.

        Without this, every register/unregister or swap cycle leaves
        the replaced model's sharded store in ``_sharded_stores``
        forever — an unbounded leak of chunk memory (and memmap files)
        over the lifetime of a long-lived serving process.  Stores
        still referenced by a live primary or shadow keep their shards;
        the rest are dropped and forgotten here.
        """
        if not self._sharded_stores:
            return
        live = self._live_stores()
        kept = []
        for store in self._sharded_stores:
            if any(s is store for s in live):
                kept.append(store)
            else:
                store.drop_shards()
        self._sharded_stores = kept

    def _ensure_shards(self) -> None:
        """Lazily re-shard after close(): the usable-after-close
        contract would otherwise serve the slow unsharded path with no
        signal beyond a missing ``shard_materializations_total``."""
        if not self._needs_reshard:
            return
        self._needs_reshard = False
        for scout in self._scouts.values():
            builder = getattr(scout, "builder", None)
            if builder is not None:
                self._shard_builder(builder)

    def unregister(self, team: str) -> None:
        """Remove a team's Scout and all of its serving state.

        Stats, drift history, and breaker state go with the Scout: a
        later ``register`` for the same team starts from a clean slate
        explicitly rather than serving stale counters for a gate-keeper
        that no longer exists.

        Safe against in-flight serving: teardown waits on the team's
        own lock (so no Scout call is mid-``predict``) and the commit
        lock (so no staged decision is mid-accounting) before popping
        state.  A batch that fanned out *before* the unregister may
        still commit afterwards; :meth:`_commit` treats the vanished
        team's stats as gone rather than KeyErroring, and
        :meth:`_invoke_scout` degrades a call to a removed Scout to an
        ERROR abstain — exactly how a crashed Scout is handled.
        """
        team_lock = self._team_locks.get(team)
        if team_lock is None:
            # Never registered (or already unregistered): nothing can
            # be in flight for it, plain pops are safe.
            self._scouts.pop(team, None)
            self._shadows.pop(team, None)
            self._epochs.pop(team, None)
            self._stats.pop(team, None)
            self._monitors.pop(team, None)
            self._breakers.pop(team, None)
            self._breaker_seen.pop(team, None)
            self._prune_sharded_stores()
            return
        # Lock order mirrors the serving path's worst case (a team
        # lock held while no commit lock is, and vice versa): _commit
        # holds only the commit lock and _invoke_scout holds only the
        # team lock, so taking team-then-commit here cannot deadlock.
        with team_lock:
            with self._commit_lock:
                self._scouts.pop(team, None)
                self._shadows.pop(team, None)
                self._epochs.pop(team, None)
                self._stats.pop(team, None)
                self._monitors.pop(team, None)
                self._breakers.pop(team, None)
                self._breaker_seen.pop(team, None)
                self._team_locks.pop(team, None)
        self._prune_sharded_stores()

    @property
    def registered_teams(self) -> list[str]:
        return sorted(self._scouts)

    # -- worker pool -------------------------------------------------------

    def _ensure_pool(self, workers: int) -> ThreadPoolExecutor:
        """The persistent pool, created lazily and grown on demand.

        A pool that is already at least ``workers`` wide is reused
        as-is; a narrower one is drained and replaced.  It never
        shrinks on its own — only :meth:`close` tears it down.
        """
        with self._pool_lock:
            if self._pool is not None and self._pool_size >= workers:
                return self._pool
            if self._pool is not None:
                # Draining under _pool_lock is deliberate: the lock
                # exists precisely to serialize pool replacement, and
                # nothing else ever blocks on it (fan-out threads use
                # the pool, not the lock).
                self._pool.shutdown(wait=True)  # scoutlint: disable=lock-held-blocking
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="scout-serve"
            )
            self._pool_size = workers
            return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent).

        The manager stays usable afterwards — the next parallel call
        lazily recreates the pool — but a long-lived deployment should
        close it (or use the manager as a context manager) so worker
        threads don't outlive the serving loop.
        """
        with self._pool_lock:
            if self._pool is not None:
                # Teardown waits for in-flight work by design; the
                # lock only guards pool identity (see _ensure_pool),
                # so holding it across the drain cannot deadlock.
                self._pool.shutdown(wait=True)  # scoutlint: disable=lock-held-blocking
                self._pool = None
                self._pool_size = 0
        # Free chunk memory for stores this manager sharded (stores
        # sharded elsewhere are someone else's lifecycle).  The manager
        # stays usable, so remember to re-shard lazily on the next
        # serve — otherwise a reused manager silently takes the slow
        # unsharded path.
        if self._sharded_stores:
            self._needs_reshard = True
        for store in self._sharded_stores:
            store.drop_shards()
        self._sharded_stores.clear()

    def __enter__(self) -> "IncidentManager":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- serving -----------------------------------------------------------------

    _BREAKER_STATE_LEVELS = {
        BreakerState.CLOSED.value: 0,
        BreakerState.HALF_OPEN.value: 1,
        BreakerState.OPEN.value: 2,
    }

    def _note_breaker(self, team: str, state: BreakerState) -> None:
        """Emit a transition event when a breaker's state changes.

        Called before each call (where an elapsed cool-down reads as
        HALF_OPEN — the only chance to observe the probe state) and
        after it (catching trips and re-closes), so the metrics stream
        sees the full CLOSED→OPEN→HALF_OPEN→CLOSED cycle even though a
        stats snapshot only ever shows the latest state.
        """
        last = self._breaker_seen.get(team, BreakerState.CLOSED.value)
        if state.value == last:
            return
        self._breaker_seen[team] = state.value
        self._m_transitions.inc(
            1, team=team, from_state=last, to_state=state.value
        )
        self._m_breaker_state.set(
            self._BREAKER_STATE_LEVELS[state.value], team=team
        )

    def _call_one(
        self, incident: Incident, team: str, parent=None
    ) -> _CallResult:
        """One failure-isolated, traced Scout call: never raises."""
        breaker = self._breakers.get(team)
        if breaker is not None:
            self._note_breaker(team, breaker.state)
        with self.obs.trace.span("scout.call", parent=parent, team=team) as span:
            result = self._invoke_scout(incident, team, breaker)
            span.attributes["status"] = result.outcome.status.value
        if breaker is not None:
            self._note_breaker(team, breaker.state)
        return result

    def _invoke_scout(
        self, incident: Incident, team: str, breaker: CircuitBreaker | None
    ) -> _CallResult:
        # One incident at a time per Scout: concurrent batch incidents
        # fanning out to the same team would otherwise race on the
        # Scout's builder memos and its breaker (neither is internally
        # locked).  Serializing here also makes the cross-incident
        # cache hit/miss counts deterministic — each unique monitoring
        # key is exactly one miss, no matter how incidents interleave.
        team_lock = self._team_locks.get(team)
        if team_lock is None:
            # The team was unregistered between fan-out and this call;
            # degrade like any other failed call instead of KeyErroring
            # the whole batch.
            return self._unregistered_outcome(incident, team)
        with team_lock:
            return self._invoke_scout_locked(incident, team, breaker)

    def _unregistered_outcome(
        self, incident: Incident, team: str
    ) -> _CallResult:
        """The abstain a call to a torn-down team degrades to."""
        prediction = _abstain(
            incident.incident_id, f"{team} scout unregistered mid-flight"
        )
        # The call reached serving (unlike a breaker skip) but did no
        # Scout work: a measured-but-zero-cost ERROR, so _commit's
        # latency accounting stays uniform across ERROR outcomes.
        outcome = ScoutCallOutcome(
            team, CallStatus.ERROR, 0.0, error="scout unregistered mid-flight"
        )
        # Epoch 0: no model generation served this call.
        return _CallResult(team, prediction, outcome, epoch=0)

    def _invoke_scout_locked(
        self, incident: Incident, team: str, breaker: CircuitBreaker | None
    ) -> _CallResult:
        # Captured under the team lock: a swap() waiting on this lock
        # has not happened yet as far as this call is concerned, so the
        # decision record truthfully stamps the generation that served.
        epoch = self._epochs.get(team, 0)
        if breaker is not None and not breaker.allow():
            prediction = _abstain(
                incident.incident_id, f"{team} circuit breaker open"
            )
            # A skipped Scout has no latency: None, not a fake 0.0.
            outcome = ScoutCallOutcome(team, CallStatus.BREAKER_OPEN, None)
            return _CallResult(team, prediction, outcome, epoch)
        scout = self._scouts.get(team)
        if scout is None:
            # Unregistered after the lock object was fetched but before
            # we acquired it — the same degradation as the lockless race.
            return self._unregistered_outcome(incident, team)
        start = self._clock()
        try:
            prediction = scout.predict(incident)
        except Exception as exc:  # noqa: BLE001 — the isolation boundary
            elapsed = self._clock() - start
            if breaker is not None:
                breaker.record_failure()
            prediction = _abstain(
                incident.incident_id, f"{team} scout error: {exc}"
            )
            outcome = ScoutCallOutcome(
                team,
                CallStatus.ERROR,
                elapsed,
                error=f"{type(exc).__name__}: {exc}",
            )
            return self._with_shadow(
                incident, _CallResult(team, prediction, outcome, epoch)
            )
        elapsed = self._clock() - start
        if self.scout_deadline is not None and elapsed > self.scout_deadline:
            # Cooperative deadline: the answer arrived too late to be
            # trusted inside the fan-out budget, so it degrades to an
            # abstain (and counts against the breaker).
            if breaker is not None:
                breaker.record_failure()
            prediction = _abstain(
                incident.incident_id,
                f"{team} deadline overrun ({elapsed:.3f}s"
                f" > {self.scout_deadline:.3f}s)",
            )
            outcome = ScoutCallOutcome(
                team,
                CallStatus.TIMEOUT,
                elapsed,
                error=f"exceeded {self.scout_deadline:.3f}s deadline",
            )
            return self._with_shadow(
                incident, _CallResult(team, prediction, outcome, epoch)
            )
        if breaker is not None:
            breaker.record_success()
        return self._with_shadow(
            incident,
            _CallResult(
                team,
                prediction,
                ScoutCallOutcome(team, CallStatus.OK, elapsed),
                epoch,
            ),
        )

    def _with_shadow(
        self, incident: Incident, result: _CallResult
    ) -> _CallResult:
        """Run the team's shadow candidate (if any) on the same incident.

        Called under the team lock, *after* the primary: the shadow
        sees exactly the incidents the production model served (a
        breaker-open skip shadows nothing — the primary did no work
        either), its latency is measured separately, and any exception
        or deadline overrun is recorded on the observation without
        touching the primary's result.  The observation itself is
        staged here and accounted in :meth:`_commit`, in arrival order,
        so shadow serving preserves batch-mode byte-determinism.
        """
        shadow = self._shadows.get(result.team)
        if shadow is None:
            return result
        incident_id = incident.incident_id
        start = self._clock()
        error = None
        shadow_prediction = None
        try:
            shadow_prediction = shadow.predict(incident)
            status = CallStatus.OK
        except Exception as exc:  # noqa: BLE001 — same isolation boundary
            status = CallStatus.ERROR
            error = f"{type(exc).__name__}: {exc}"
        elapsed = self._clock() - start
        if (
            status is CallStatus.OK
            and self.scout_deadline is not None
            and elapsed > self.scout_deadline
        ):
            status = CallStatus.TIMEOUT
            error = f"exceeded {self.scout_deadline:.3f}s deadline"
        primary = result.prediction
        result.shadow = ShadowObservation(
            incident_id=incident_id,
            team=result.team,
            primary_epoch=result.epoch,
            primary_status=result.outcome.status,
            primary_responsible=primary.responsible,
            primary_confidence=primary.confidence,
            primary_route=_route_name(primary),
            shadow_status=status,
            shadow_responsible=(
                shadow_prediction.responsible
                if status is CallStatus.OK
                else None
            ),
            shadow_confidence=(
                shadow_prediction.confidence
                if status is CallStatus.OK
                else 0.0
            ),
            shadow_route=(
                _route_name(shadow_prediction)
                if status is CallStatus.OK
                else None
            ),
            shadow_latency_seconds=elapsed,
            shadow_error=error,
        )
        return result

    def _call_scouts(
        self, incident: Incident, parent=None, inline: bool = False
    ) -> list[_CallResult]:
        """Run every registered Scout on one incident.

        Returns ``(team, prediction, outcome)`` in sorted team order —
        the composition input is deterministic regardless of ``n_jobs``.
        Each Scout owns its feature builder (and caches), so concurrent
        per-team predictions never share mutable state; the persistent
        pool overlaps their monitoring pulls.  Failures never
        propagate: each call is isolated by :meth:`_call_one`.
        ``parent`` is the incident's root span: pool threads cannot
        inherit it from context, so it is passed explicitly and each
        call attaches its ``scout.call`` child to it.  ``inline`` is
        set by batch-mode workers, which already *run on* the pool and
        must not submit to it (tasks waiting on tasks in one
        fixed-size pool can deadlock).
        """
        teams = sorted(self._scouts)

        def call(team: str):
            return self._call_one(incident, team, parent)

        n_workers = min(resolve_n_jobs(self.n_jobs), max(1, len(teams)))
        if not inline and n_workers > 1 and len(teams) > 1:
            pool = self._ensure_pool(n_workers)
            futures = [pool.submit(call, team) for team in teams]
            return [future.result() for future in futures]
        return [call(team) for team in teams]

    def handle(self, incident: Incident) -> ServingDecision:
        """Fan an incident out to every registered Scout and compose."""
        self._ensure_shards()
        root = self.obs.trace.start_span(
            "serve.handle", incident_id=incident.incident_id
        )
        try:
            staged = self._decide(incident, root)
        except BaseException:
            self.obs.trace.finish(root)
            raise
        return self._commit(staged)

    def _decide(
        self, incident: Incident, root, inline_scouts: bool = False
    ) -> _StagedDecision:
        """The compute phase: fan out, collect answers, compose.

        Safe to run on a pool worker — it touches no shared accounting
        state (stats, metrics, log); that is :meth:`_commit`'s job.
        ``root`` is the incident's ``serve.handle`` span, passed
        explicitly because a worker thread can't inherit it from
        context.
        """
        started = self._clock()
        results = self._call_scouts(incident, root, inline=inline_scouts)
        answers = [
            ScoutAnswer(
                r.team, r.prediction.responsible, r.prediction.confidence
            )
            for r in results
        ]
        compose_started = self._clock()
        with self.obs.trace.span("serve.compose", parent=root):
            suggested = self._master.route(answers)
        compose_seconds = self._clock() - compose_started
        root.attributes["suggested_team"] = suggested
        return _StagedDecision(
            incident=incident,
            root=root,
            results=results,
            answers=answers,
            suggested=suggested,
            compose_seconds=compose_seconds,
            latency_seconds=self._clock() - started,
        )

    def _commit(self, staged: _StagedDecision) -> ServingDecision:
        """The commit phase: accounting, logging, and the root finish.

        Runs on the caller's thread, one staged decision at a time
        (the commit lock guards against a concurrent ``handle`` call),
        in arrival order — so stats, metric increments, and the audit
        log are identical to what a serial loop would have produced.
        """
        incident = staged.incident
        root = staged.root
        with self._commit_lock:
            predictions: list[ScoutPrediction] = []
            outcomes: list[ScoutCallOutcome] = []
            stage_latencies: list[tuple[str, float]] = []
            for result in staged.results:
                team = result.team
                prediction = result.prediction
                outcome = result.outcome
                # None when the team was unregistered mid-batch: its
                # stats object left with it, but the metric stream and
                # the decision record still see the degraded call.
                stats = self._stats.get(team)
                if stats is None:
                    stats = ScoutServiceStats(team=team)
                stats.calls += 1
                self._m_calls.inc(1, team=team, status=outcome.status.value)
                # Latency accounting, explicit per status: OK, ERROR and
                # TIMEOUT all reached the Scout and carry a measured
                # latency; a BREAKER_OPEN skip never invoked it and
                # carries None.  The stats totals and the latency
                # histogram count exactly the same outcomes, so
                # `mean_latency`, histogram count/sum, and `invoked`
                # can never drift apart.
                if outcome.status is CallStatus.BREAKER_OPEN:
                    stats.breaker_open_skips += 1
                elif outcome.status is CallStatus.ERROR:
                    stats.errors += 1
                    stats.total_latency += outcome.latency_seconds
                elif outcome.status is CallStatus.TIMEOUT:
                    stats.timeouts += 1
                    stats.total_latency += outcome.latency_seconds
                else:
                    stats.total_latency += outcome.latency_seconds
                if outcome.latency_seconds is not None:
                    self._m_latency.observe(outcome.latency_seconds, team=team)
                    stage_latencies.append(
                        (f"scout.{team}", outcome.latency_seconds)
                    )
                if prediction.responsible is None:
                    stats.abstained += 1
                    if outcome.ok:
                        self._m_model_abstains.inc(1, team=team)
                elif prediction.responsible:
                    stats.said_yes += 1
                else:
                    stats.said_no += 1
                breaker = self._breakers.get(team)
                if breaker is not None:
                    stats.breaker_state = breaker.state.value
                predictions.append(prediction)
                outcomes.append(outcome)
                obs = result.shadow
                if obs is not None:
                    # Shadow accounting happens here, not at observe
                    # time: the commit lock + arrival order keep the
                    # shadow log and its metric stream byte-identical
                    # between serial and batch serving.
                    self._shadow_log.append(obs)
                    self._m_shadow_calls.inc(
                        1, team=team, status=obs.shadow_status.value
                    )
                    self._m_shadow_latency.observe(
                        obs.shadow_latency_seconds, team=team
                    )
                    if obs.diff:
                        self._m_shadow_diffs.inc(1, team=team)
            stage_latencies.append(("compose", staged.compose_seconds))
            decision = ServingDecision(
                incident_id=incident.incident_id,
                suggested_team=staged.suggested,
                answers=tuple(staged.answers),
                predictions=tuple(predictions),
                latency_seconds=staged.latency_seconds,
                acted=not self.suggestion_mode and staged.suggested is not None,
                outcomes=tuple(outcomes),
                trace_id=root.trace_id,
                stage_latencies=tuple(stage_latencies),
                model_epochs=tuple(
                    (r.team, r.epoch) for r in staged.results
                ),
            )
            self._m_incidents.inc()
            if staged.suggested is not None:
                self._m_suggestions.inc()
            if decision.degraded:
                self._m_degraded.inc()
            self._m_handle_latency.observe(decision.latency_seconds)
            self._log.append(decision)
            self._log_indices.setdefault(incident.incident_id, []).append(
                len(self._log) - 1
            )
            self._served_ids.add(incident.incident_id)
        self.obs.trace.finish(root)
        return decision

    def handle_batch(
        self,
        incidents: list[Incident],
        workers: int | None = None,
    ) -> list[ServingDecision]:
        """Serve a burst of incidents, concurrently, in arrival order.

        ``workers`` overrides the manager's ``batch_workers`` for this
        call; with one worker (the default manager setting) the batch
        degenerates to a serial ``handle`` loop.  With more, incidents
        fan out across the persistent pool — compute runs concurrently,
        but each incident's accounting *commits* on this thread in
        input order, so the decision list, the audit log, the per-team
        stats, and the rendered metrics exposition are byte-identical
        to the serial path (under a fake clock; with a real clock only
        the measured latencies differ).  Per-incident ``serve.handle``
        root spans are pre-created in input order, so trace ids also
        match the serial loop; there is deliberately no batch-level
        span or counter, for the same reason.  Breaker bookkeeping is
        only order-deterministic for healthy runs — injected faults
        under concurrency may trip breakers at different points than a
        serial run would.
        """
        incidents = list(incidents)
        self._ensure_shards()
        n_workers = resolve_n_jobs(
            self.batch_workers if workers is None else workers
        )
        n_workers = min(n_workers, max(1, len(incidents)))
        if n_workers <= 1 or len(incidents) <= 1:
            return [self.handle(incident) for incident in incidents]
        roots = [
            self.obs.trace.start_span(
                "serve.handle", incident_id=incident.incident_id
            )
            for incident in incidents
        ]
        pool = self._ensure_pool(n_workers)
        futures = [
            pool.submit(self._decide, incident, root, True)
            for incident, root in zip(incidents, roots)
        ]
        try:
            return [self._commit(future.result()) for future in futures]
        finally:
            for future in futures:
                future.cancel()
            for root in roots:
                self.obs.trace.finish(root)  # idempotent — no-op if committed

    # -- feedback ------------------------------------------------------------------

    def resolve(self, incident_id: int, responsible_team: str) -> None:
        """Report an incident's resolution; feeds the drift monitors.

        The latest *unresolved* decision for the incident is scored and
        every decision for the incident is marked resolved — a repeated
        resolution (or a stale decision from a re-served incident) can
        never double-count drift observations.  Teams unregistered
        since the decision was served are skipped.  Raises ``KeyError``
        only if the incident was never served.

        O(decisions for this incident): lookups go through the
        commit-time ``incident_id -> log positions`` index, not a scan
        of the whole decision log — the scan made resolving a stream of
        n incidents quadratic.
        """
        indices = [
            i
            for i in self._log_indices.get(incident_id, ())
            if i not in self._resolved_indices
        ]
        if not indices:
            if incident_id in self._served_ids:
                return  # already resolved — idempotent
            raise KeyError(f"no served decision for incident {incident_id}")
        decision = self._log[indices[-1]]
        self._resolved_indices.update(indices)
        for answer in decision.answers:
            truth = answer.team == responsible_team
            if answer.responsible is None:
                continue
            monitor = self._monitors.get(answer.team)
            if monitor is None:
                continue  # unregistered since the decision was served
            monitor.record(correct=(answer.responsible == truth))

    # -- introspection ---------------------------------------------------------------

    @property
    def log(self) -> list[ServingDecision]:
        return list(self._log)

    def stats(self, team: str) -> ScoutServiceStats:
        return self._stats[team]

    def drift_monitor(self, team: str) -> DriftMonitor:
        return self._monitors[team]

    def breaker(self, team: str) -> CircuitBreaker | None:
        """The team's circuit breaker (None when breakers are disabled)."""
        if team not in self._scouts:
            raise KeyError(f"no registered Scout for {team!r}")
        return self._breakers.get(team)

    @property
    def degraded_teams(self) -> list[str]:
        """Teams whose breaker is not closed (open or half-open probe)."""
        return sorted(
            team
            for team, breaker in self._breakers.items()
            if breaker.state is not BreakerState.CLOSED
        )

    def whatif_accuracy(self, truth: dict[int, str]) -> dict[str, float]:
        """What-if analysis over the decision log.

        ``truth`` maps incident id → responsible team.  Returns the
        fraction of served incidents suggested correctly, the fraction
        that abstained, and the mis-suggestion rate.  A re-served
        incident is scored once, on its *latest* decision — the same
        dedupe semantics :meth:`resolve` guarantees — so repeats can't
        double-weight the accuracy figures.
        """
        latest: dict[int, ServingDecision] = {}
        for decision in self._log:
            latest[decision.incident_id] = decision
        suggested_right = suggested_wrong = abstained = 0
        for decision in latest.values():
            responsible = truth.get(decision.incident_id)
            if responsible is None:
                continue
            if decision.suggested_team is None:
                abstained += 1
            elif decision.suggested_team == responsible:
                suggested_right += 1
            else:
                suggested_wrong += 1
        total = suggested_right + suggested_wrong + abstained
        if total == 0:
            return {"correct": 0.0, "wrong": 0.0, "abstained": 0.0}
        return {
            "correct": suggested_right / total,
            "wrong": suggested_wrong / total,
            "abstained": abstained / total,
        }
