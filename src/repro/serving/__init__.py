"""Online serving substrate: the incident manager of §6.

Beyond the fan-out/composition loop, this package carries the serving
resilience layer: per-Scout circuit breakers (:mod:`.breaker`),
deterministic retry for transient monitoring faults (:mod:`.retry`),
the failure-isolated call path in :class:`.manager.IncidentManager`,
and the streaming ingestion tier (:mod:`.stream`) that turns the
one-shot batch API into an always-on front end with admission control,
load shedding, and SLO enforcement.  The manager also carries the
model-lifecycle surface: epoch-stamped zero-downtime hot-swap
(``swap()``) and side-by-side shadow serving (``register_shadow()``)
feeding :class:`.manager.ShadowObservation` records to the promotion
report in :mod:`repro.analysis.shadow`.
"""

from .breaker import BreakerPolicy, BreakerState, CircuitBreaker
from .fleet import (
    FleetDecision,
    FleetRoster,
    FleetScoutSpec,
    FleetServer,
    MasterPolicy,
    build_fleet_roster,
)
from .manager import (
    CallStatus,
    IncidentManager,
    ScoutCallOutcome,
    ScoutServiceStats,
    ServingDecision,
    ShadowObservation,
)
from .retry import RetryPolicy
from .stream import (
    ShedPolicy,
    SLOTracker,
    SLOViolation,
    StreamOutcome,
    StreamServer,
    StreamStatus,
    poisson_arrivals,
)

__all__ = [
    "BreakerPolicy",
    "BreakerState",
    "CallStatus",
    "CircuitBreaker",
    "FleetDecision",
    "FleetRoster",
    "FleetScoutSpec",
    "FleetServer",
    "IncidentManager",
    "MasterPolicy",
    "build_fleet_roster",
    "RetryPolicy",
    "SLOTracker",
    "SLOViolation",
    "ScoutCallOutcome",
    "ScoutServiceStats",
    "ServingDecision",
    "ShadowObservation",
    "ShedPolicy",
    "StreamOutcome",
    "StreamServer",
    "StreamStatus",
    "poisson_arrivals",
]
