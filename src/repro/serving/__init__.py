"""Online serving substrate: the incident manager of §6.

Beyond the fan-out/composition loop, this package carries the serving
resilience layer: per-Scout circuit breakers (:mod:`.breaker`),
deterministic retry for transient monitoring faults (:mod:`.retry`),
and the failure-isolated call path in :class:`.manager.IncidentManager`.
"""

from .breaker import BreakerPolicy, BreakerState, CircuitBreaker
from .manager import (
    CallStatus,
    IncidentManager,
    ScoutCallOutcome,
    ScoutServiceStats,
    ServingDecision,
)
from .retry import RetryPolicy

__all__ = [
    "BreakerPolicy",
    "BreakerState",
    "CallStatus",
    "CircuitBreaker",
    "IncidentManager",
    "RetryPolicy",
    "ScoutCallOutcome",
    "ScoutServiceStats",
    "ServingDecision",
]
