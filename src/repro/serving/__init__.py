"""Online serving substrate: the incident manager of §6."""

from .manager import IncidentManager, ScoutServiceStats, ServingDecision

__all__ = ["IncidentManager", "ScoutServiceStats", "ServingDecision"]
