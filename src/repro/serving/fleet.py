"""Fleet tier: Scout Master routing over 100+ team Scouts (Appendix C).

The paper's Appendix C sketches a *Scout Master* that composes many
per-team Scouts into one global incident router; ROADMAP item 1 asks
for that at fleet scale.  This module is the serving layer for it:

* **Roster generation.**  :func:`build_fleet_roster` replicates the
  simulation's 12-team universe (:func:`~repro.simulation.teams.
  default_teams`) across regions — ``PhyNet-r00``, ``Storage-r03``, …
  — producing 50–200 region-qualified team Scouts whose dependency
  edges mirror the base graph within each region.  Per-team accuracy
  and confidence spread (Appendix D's ``P`` and ``β``) draw from a
  seeded generator, so a roster is a pure function of ``(n_teams,
  seed)``.
* **Master policy.**  :class:`MasterPolicy` wraps the Appendix C
  strawman (:class:`~repro.simulation.scout_master.ScoutMaster`) in
  the three fleet-scale refinements: cross-team confidence
  *calibration* (a reliability curve from
  :mod:`repro.analysis.calibration` maps each Scout's raw confidence
  to its observed bucket accuracy, so a chronically over-confident
  team stops outranking a well-calibrated one), *top-k candidate
  ranking*, and a deterministic *re-route chain* — when the top
  candidate bounces the incident or its breaker is open, the router
  walks the ranked chain instead of giving up (DeepTriage's
  transfer-path framing).
* **Sharded multi-process serving.**  Scouts are partitioned into a
  fixed number of shards; scoring fans out one task per (shard,
  incident-chunk) over a ``ProcessPoolExecutor`` so the fleet escapes
  the GIL.  Worker processes memoize their shard context and open the
  roster's signal matrix as a **read-only memmap** — the parent
  materializes it once on disk and workers never re-pickle or rebuild
  it.  Workers are *pure*: a task's result is a function of the task
  alone, so decisions, decision logs, and the Prometheus exposition
  are byte-identical across worker counts and across process-pool vs.
  in-process execution.
* **Per-Scout resilience, parent-side.**  The existing
  :class:`~.breaker.CircuitBreaker` machinery guards each fleet Scout
  exactly as :class:`~.manager.IncidentManager` guards its Scouts, and
  retry budgets follow :class:`~.retry.RetryPolicy` semantics
  (``max_attempts`` bounded, deterministic).  Breaker state lives in
  the parent and is advanced in arrival order — process workers are
  stateless by design, because pool scheduling must never influence
  breaker transitions.

Determinism contract: under a
:class:`~repro.monitoring.faults.FakeClock`, the same roster seed and
incident trace produce a byte-identical decision log and exposition for
``workers ∈ {1, 2, 4, …}``, pool or no pool.  Every stochastic draw is
a counter-free hash of ``(seed, team, incident_id, purpose)`` — no
shared RNG stream exists to depend on scheduling.
"""

from __future__ import annotations

import hashlib
import math
import os
import struct
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context

import numpy as np

from ..analysis.calibration import ReliabilityBucket, reliability_curve
from ..incidents.incident import Incident
from ..simulation.scout_master import ScoutAnswer, ScoutMaster
from ..simulation.teams import Team, TeamRegistry, default_teams
from .breaker import BreakerPolicy, BreakerState, CircuitBreaker

__all__ = [
    "FleetScoutSpec",
    "FleetRoster",
    "FleetDecision",
    "MasterPolicy",
    "FleetServer",
    "build_fleet_roster",
]

# Columns in the per-team signal matrix (the memmap-backed monitoring
# shard each worker slices per incident).
_SIGNAL_COLS = 256
# Window of signal columns pooled per (team, incident) scoring.
_SIGNAL_WINDOW = 32


@dataclass(frozen=True)
class FleetScoutSpec:
    """One region-qualified team Scout (Appendix D's ``P``/``β`` model)."""

    team: str
    base: str
    region: int
    accuracy: float
    beta: float


@dataclass(frozen=True)
class FleetRoster:
    """A generated fleet: registry + per-team Scout specs.

    ``specs`` is sorted by team name; ``seed`` is the generation seed
    (it also seeds every per-incident draw the fleet makes).
    """

    registry: TeamRegistry
    specs: tuple[FleetScoutSpec, ...]
    seed: int

    @property
    def teams(self) -> list[str]:
        return [spec.team for spec in self.specs]

    def regions_of(self, base: str) -> list[str]:
        """Region-qualified names carrying one base team, sorted."""
        return [spec.team for spec in self.specs if spec.base == base]

    def assign(self, base: str, incident_id: int) -> str:
        """The region-qualified truth team for one incident.

        The simulation's ground truth lives in the 12-team base
        universe; the fleet spreads incidents across its regional
        copies deterministically by incident id.
        """
        names = self.regions_of(base)
        if not names:
            return base
        return names[incident_id % len(names)]

    @staticmethod
    def base_of(team: str) -> str:
        """Strip the region qualifier (``PhyNet-r03`` → ``PhyNet``)."""
        return team.rsplit("-r", 1)[0]


def build_fleet_roster(n_teams: int = 120, seed: int = 0) -> FleetRoster:
    """Generate an ``n_teams``-strong fleet from the simulation roster.

    The 12-team universe replicates across ``ceil(n_teams / 12)``
    regions in the base registry's canonical (sorted) order; dependency
    edges stay within a region, mirroring the base graph.  Teams beyond
    ``n_teams`` in the (region, base) sequence are trimmed and dangling
    dependency edges dropped with them.
    """
    if n_teams < 1:
        raise ValueError("n_teams must be >= 1")
    base = default_teams()
    base_names = base.names  # sorted — the canonical region layout
    n_regions = math.ceil(n_teams / len(base_names))
    kept: list[tuple[str, str, int]] = []  # (qualified, base, region)
    for region in range(n_regions):
        for name in base_names:
            if len(kept) >= n_teams:
                break
            kept.append((f"{name}-r{region:02d}", name, region))
    kept_names = {qualified for qualified, _, _ in kept}

    registry = TeamRegistry()
    for qualified, name, region in kept:
        team = base[name]
        deps = tuple(
            f"{dep}-r{region:02d}"
            for dep in team.depends_on
            if f"{dep}-r{region:02d}" in kept_names
        )
        registry.add(
            Team(
                qualified,
                depends_on=deps,
                internal=team.internal,
                symptoms=team.symptoms,
            )
        )
    registry.validate()

    # Appendix D parameters per Scout, in sorted-team order so the
    # draw sequence is a pure function of (n_teams, seed).
    rng = np.random.default_rng(seed)
    specs = []
    for qualified in sorted(kept_names):
        base_name, region = qualified.rsplit("-r", 1)
        specs.append(
            FleetScoutSpec(
                team=qualified,
                base=base_name,
                region=int(region),
                accuracy=float(rng.uniform(0.93, 0.99)),
                beta=float(rng.uniform(0.05, 0.30)),
            )
        )
    return FleetRoster(registry=registry, specs=tuple(specs), seed=seed)


# -- deterministic draws ------------------------------------------------------


def _draw(seed: int, *parts) -> float:
    """A uniform [0, 1) draw addressed by content, not by stream order.

    Every stochastic decision the fleet makes draws through here, keyed
    on what the draw is *for* — there is no shared RNG whose stream
    order could couple results to scheduling or worker count.
    """
    digest = hashlib.sha256(
        ("|".join(str(p) for p in (seed, *parts))).encode()
    ).digest()
    return struct.unpack(">Q", digest[:8])[0] / 2.0**64


def _signal_stat(signals: np.ndarray, row: int, incident_id: int) -> float:
    """Pool one window of the team's monitoring-shard row.

    The slice position depends on the incident, so every scoring does
    real vectorized work against the memmap — this is the chunk the
    workers must *not* re-materialize per task.
    """
    start = incident_id % (_SIGNAL_COLS - _SIGNAL_WINDOW)
    window = signals[row, start:start + _SIGNAL_WINDOW]
    return float(window.mean() + window.std())


def _score_one(
    spec: FleetScoutSpec,
    row: int,
    signals: np.ndarray,
    incident_id: int,
    truth_team: str,
    seed: int,
    failure_rate: float,
    max_attempts: int,
    broken: frozenset[str],
) -> tuple[str, bool | None, float, int, bool]:
    """Score one (Scout, incident) pair — the pure worker kernel.

    Returns ``(team, verdict, confidence, attempts, ok)``.  ``ok`` is
    False when every retry attempt failed (the parent records the
    failure against the breaker and the Scout contributes no answer).
    """
    # Transient-failure model with RetryPolicy semantics: attempt k has
    # its own content-addressed draw, so a retry genuinely re-rolls.
    attempts = 0
    ok = False
    for attempt in range(max_attempts):
        attempts += 1
        if spec.team in broken:
            continue
        if _draw(seed, "fail", spec.team, incident_id, attempt) >= failure_rate:
            ok = True
            break
    if not ok:
        return (spec.team, None, 0.0, attempts, False)
    truth = truth_team == spec.team
    correct = _draw(seed, "acc", spec.team, incident_id) < spec.accuracy
    verdict = truth if correct else (not truth)
    spread = _draw(seed, "conf", spec.team, incident_id)
    # The monitoring-shard read perturbs the confidence inside its
    # Appendix D band — the memmap is load-bearing, not decorative.
    jitter = _signal_stat(signals, row, incident_id) % 1.0
    u = (spread + jitter) % 1.0
    if correct:
        confidence = 0.8 - spec.beta * u
    else:
        confidence = 0.5 + spec.beta * u
    return (spec.team, verdict, round(confidence, 9), attempts, True)


# -- worker-process plumbing --------------------------------------------------

# Process-global shard context, keyed by roster token: specs, the
# team → row index map, and the lazily opened read-only memmap.  A
# worker reuses one open mapping for its whole life; tasks carry only
# the token plus the incident chunk.
_WORKER_CTX: dict = {}


def _fleet_worker_init(token: str, payload: dict) -> None:
    """Executor initializer: stash the shard context once per process."""
    _WORKER_CTX[token] = dict(payload, signals=None)


def _worker_signals(ctx: dict) -> np.ndarray:
    signals = ctx.get("signals")
    if signals is None:
        signals = np.load(ctx["signal_path"], mmap_mode="r")
        ctx["signals"] = signals
    return signals


def _score_chunk(
    token: str,
    shard_id: int,
    pairs: tuple[tuple[int, str], ...],
) -> list[tuple[int, tuple]]:
    """Score one shard's Scouts over one incident chunk.

    Pure: output depends only on ``(token context, shard_id, pairs)``.
    The optional ``io_stall_s`` models the network-bound monitoring
    fetch a real fleet pays once per chunk — it is real wall time (the
    overlap process workers buy) but never touches the results.
    """
    ctx = _WORKER_CTX[token]
    stall = ctx.get("io_stall_s", 0.0)
    if stall:
        # Real wall time is the point: the stall models the
        # network-bound fetch that process workers overlap, and it
        # never reaches any result or logged value.
        time.sleep(stall)  # scoutlint: disable=naked-clock
    signals = _worker_signals(ctx)
    specs: list[tuple[int, FleetScoutSpec]] = ctx["shards"][shard_id]
    seed = ctx["seed"]
    failure_rate = ctx["failure_rate"]
    max_attempts = ctx["max_attempts"]
    broken = ctx["broken"]
    out = []
    for incident_id, truth_team in pairs:
        for row, spec in specs:
            out.append(
                (
                    incident_id,
                    _score_one(
                        spec, row, signals, incident_id, truth_team,
                        seed, failure_rate, max_attempts, broken,
                    ),
                )
            )
    return out


# -- the Master policy --------------------------------------------------------


@dataclass(frozen=True)
class FleetDecision:
    """One fleet routing decision, with its full re-route chain.

    ``candidates`` is the calibration-ranked top-k ``(team, confidence,
    calibrated)``; ``chain`` is the deterministic re-route order
    actually walked (strawman pick first); ``reroutes`` counts the
    chain entries that bounced or were breaker-skipped before
    ``suggested_team`` accepted.  ``suggested_team`` is None when the
    fleet fell back to the legacy routing process.
    """

    incident_id: int
    truth_team: str
    suggested_team: str | None
    candidates: tuple[tuple[str, float, float], ...]
    chain: tuple[str, ...]
    reroutes: int
    answers_yes: int
    errors: int
    breaker_open: tuple[str, ...]

    def to_record(self) -> dict:
        """A JSON-friendly, key-sorted record for the decision log."""
        return {
            "incident_id": self.incident_id,
            "truth_team": self.truth_team,
            "suggested_team": self.suggested_team,
            "candidates": [
                [team, round(conf, 6), round(cal, 6)]
                for team, conf, cal in self.candidates
            ],
            "chain": list(self.chain),
            "reroutes": self.reroutes,
            "answers_yes": self.answers_yes,
            "errors": self.errors,
            "breaker_open": list(self.breaker_open),
        }


class MasterPolicy:
    """Calibrated top-k ranking over the Appendix C strawman.

    The strawman's pick (dependency-preferred) heads the re-route
    chain; the remaining chain entries are the other yes-answers ranked
    by *calibrated* confidence — each raw confidence mapped to the
    observed accuracy of its reliability bucket, so ranking compares
    what a confidence has historically *meant* rather than the number
    itself.  Until :meth:`fit` runs, calibrated == raw.
    """

    def __init__(
        self,
        registry: TeamRegistry,
        confidence_floor: float = 0.5,
        top_k: int = 3,
    ) -> None:
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        self.master = ScoutMaster(registry, confidence_floor=confidence_floor)
        self.top_k = top_k
        self.curve: tuple[ReliabilityBucket, ...] = ()

    def fit(self, confidences, correct, n_buckets: int = 6) -> None:
        """Build the cross-team reliability curve from a labeled trace."""
        self.curve = tuple(
            reliability_curve(confidences, correct, n_buckets=n_buckets)
        )

    def calibrated(self, confidence: float) -> float:
        """Raw confidence → its bucket's observed accuracy."""
        for bucket in self.curve:
            if bucket.lower <= confidence <= bucket.upper:
                return bucket.accuracy
        return confidence

    def rank(
        self, answers: list[ScoutAnswer]
    ) -> tuple[tuple[tuple[str, float, float], ...], tuple[str, ...]]:
        """(top-k candidates, full re-route chain) for one incident."""
        floor = self.master.confidence_floor
        yes = [
            a
            for a in answers
            if a.responsible is True and a.confidence >= floor
        ]
        ranked = sorted(
            (
                (a.team, a.confidence, self.calibrated(a.confidence))
                for a in yes
            ),
            key=lambda item: (-item[2], -item[1], item[0]),
        )
        candidates = tuple(ranked[: self.top_k])
        chain: list[str] = []
        strawman = self.master.route(answers)
        if strawman is not None:
            chain.append(strawman)
        for team, _, _ in ranked:
            if team not in chain:
                chain.append(team)
        return candidates, tuple(chain)


# -- the fleet server ---------------------------------------------------------


class FleetServer:
    """Sharded, process-pooled serving for one fleet roster.

    Parameters
    ----------
    roster:
        A :func:`build_fleet_roster` result (or hand-built equivalent).
    workers:
        Concurrent scoring tasks.  ``1`` serves in-process; ``> 1``
        with ``use_processes=True`` fans tasks over a process pool.
    use_processes:
        Score on a ``ProcessPoolExecutor`` (fork context when the
        platform offers it).  Results are byte-identical either way —
        the pool is a throughput knob, never a semantics knob.
    shard_count:
        Scout shards (tasks per incident chunk).  Fixed independently
        of ``workers`` so the task set — and therefore every log and
        metric — does not change when the pool grows.
    chunk_size:
        Incidents per scoring task.
    top_k / confidence_floor:
        Master-policy knobs (see :class:`MasterPolicy`).
    breaker / max_attempts:
        Per-Scout resilience: one :class:`CircuitBreaker` per team on
        the injected clock, and RetryPolicy-style bounded attempts for
        the transient-failure model.
    failure_rate / broken_teams:
        Deterministic fault injection: per-attempt transient failure
        probability, and teams whose Scout is hard-down (their breaker
        opens and stays open modulo half-open probes).
    wrong_accept:
        Probability a *wrong* team accepts an incident instead of
        bouncing it down the re-route chain (the truth team always
        accepts).
    io_stall_s:
        Simulated per-chunk monitoring-fetch stall (real wall time in
        the worker, zero effect on results) — the latency the process
        pool exists to overlap.
    clock / shard_dir:
        Injectable time source; where the signal memmap lives (a
        private temp dir by default, cleaned up on :meth:`close`).
    """

    def __init__(
        self,
        roster: FleetRoster,
        workers: int = 1,
        use_processes: bool = False,
        shard_count: int = 8,
        chunk_size: int = 64,
        top_k: int = 3,
        confidence_floor: float = 0.5,
        breaker: BreakerPolicy | None = None,
        max_attempts: int = 2,
        failure_rate: float = 0.0,
        broken_teams: tuple[str, ...] = (),
        wrong_accept: float = 0.35,
        io_stall_s: float = 0.0,
        clock=None,
        obs=None,
        shard_dir: str | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if not 0.0 <= failure_rate < 1.0:
            raise ValueError("failure_rate must be in [0, 1)")
        unknown = sorted(set(broken_teams) - set(roster.teams))
        if unknown:
            raise ValueError(f"broken_teams not in roster: {unknown}")
        self.roster = roster
        self.workers = workers
        self.use_processes = use_processes
        self.shard_count = min(shard_count, len(roster.specs))
        self.chunk_size = chunk_size
        self.max_attempts = max_attempts
        self.failure_rate = failure_rate
        self.broken_teams = frozenset(broken_teams)
        self.wrong_accept = wrong_accept
        self.io_stall_s = io_stall_s
        self._clock = clock if clock is not None else time.perf_counter
        if obs is None:
            from ..obs import Observability

            obs = Observability(clock=self._clock)
        self.obs = obs
        self.policy = MasterPolicy(
            roster.registry, confidence_floor=confidence_floor, top_k=top_k
        )
        self.breakers = {
            spec.team: CircuitBreaker(
                breaker or BreakerPolicy(), clock=self._clock
            )
            for spec in roster.specs
        }
        self.decisions: list[FleetDecision] = []
        self._pool: ProcessPoolExecutor | None = None
        self._own_dir: tempfile.TemporaryDirectory | None = None
        if shard_dir is None:
            self._own_dir = tempfile.TemporaryDirectory(prefix="fleet-")
            shard_dir = self._own_dir.name
        self.shard_dir = shard_dir
        self._signal_path = os.path.join(
            self.shard_dir, f"fleet_signals_{self._token()}.npy"
        )
        self._ensure_signals()
        # Round-robin shard layout over the sorted roster: shard i
        # holds every (row % shard_count == i) Scout.
        self._shards: dict[int, list[tuple[int, FleetScoutSpec]]] = {
            i: [] for i in range(self.shard_count)
        }
        for row, spec in enumerate(roster.specs):
            self._shards[row % self.shard_count].append((row, spec))
        self._init_metrics()
        _fleet_worker_init(self._token(), self._worker_payload())

    # -- setup -------------------------------------------------------------

    def _token(self) -> str:
        material = "|".join(
            (
                str(self.roster.seed),
                str(len(self.roster.specs)),
                *self.roster.teams,
                f"{self.failure_rate}",
                str(self.max_attempts),
                ",".join(sorted(self.broken_teams)),
            )
        )
        return hashlib.sha256(material.encode()).hexdigest()[:16]

    def _ensure_signals(self) -> None:
        """Materialize the signal matrix once; workers memmap it."""
        if os.path.exists(self._signal_path):
            return
        rng = np.random.default_rng(self.roster.seed)
        signals = rng.standard_normal((len(self.roster.specs), _SIGNAL_COLS))
        tmp = self._signal_path + ".tmp"
        with open(tmp, "wb") as fh:
            np.save(fh, signals)
        os.replace(tmp, self._signal_path)

    def _worker_payload(self) -> dict:
        return {
            "shards": {
                i: list(specs) for i, specs in self._shards.items()
            },
            "seed": self.roster.seed,
            "failure_rate": self.failure_rate,
            "max_attempts": self.max_attempts,
            "broken": self.broken_teams,
            "signal_path": self._signal_path,
            "io_stall_s": self.io_stall_s,
        }

    def _init_metrics(self) -> None:
        metrics = self.obs.metrics
        metrics.gauge(
            "fleet_teams", "Team Scouts registered in the fleet."
        ).set(len(self.roster.specs))
        metrics.gauge(
            "fleet_shards", "Scout shards the fleet fans out over."
        ).set(self.shard_count)
        self._m_incidents = metrics.counter(
            "fleet_incidents_total", "Incidents routed by the fleet."
        )
        self._m_decisions = metrics.counter(
            "fleet_decisions_total",
            "Fleet decisions by result (suggested vs. legacy fallback).",
            labels=("result",),
        )
        self._m_reroutes = metrics.counter(
            "fleet_reroutes_total",
            "Re-route chain hops taken past bouncing or broken candidates.",
        )
        self._m_answers = metrics.counter(
            "fleet_scout_answers_total",
            "Per-Scout fleet call outcomes.",
            labels=("status",),
        )
        self._m_breakers = metrics.gauge(
            "fleet_breakers_open",
            "Fleet Scouts currently behind an open breaker.",
        )
        self._m_latency = metrics.histogram(
            "fleet_route_latency_seconds",
            "Wall time per route_trace call on the injected clock.",
        )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._own_dir is not None:
            self._own_dir.cleanup()
            self._own_dir = None

    def __enter__(self) -> "FleetServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            try:
                ctx = get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                ctx = get_context("spawn")
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=ctx,
                initializer=_fleet_worker_init,
                initargs=(self._token(), self._worker_payload()),
            )
        return self._pool

    # -- scoring -----------------------------------------------------------

    def _truth(self, incident: Incident) -> str:
        return self.roster.assign(
            incident.responsible_team, incident.incident_id
        )

    def _score(
        self, incidents: list[Incident]
    ) -> dict[int, dict[str, tuple]]:
        """Fan scoring tasks out; reassemble per incident, per team.

        The task list — (shard, chunk) pairs over a fixed shard layout
        and a fixed chunk size — is identical for every worker count;
        only scheduling differs, and workers are pure.
        """
        pairs = tuple(
            (incident.incident_id, self._truth(incident))
            for incident in incidents
        )
        chunks = [
            pairs[i:i + self.chunk_size]
            for i in range(0, len(pairs), self.chunk_size)
        ]
        token = self._token()
        tasks = [
            (shard_id, chunk)
            for chunk in chunks
            for shard_id in range(self.shard_count)
        ]
        if self.use_processes and self.workers > 1:
            pool = self._ensure_pool()
            futures = [
                pool.submit(_score_chunk, token, shard_id, chunk)
                for shard_id, chunk in tasks
            ]
            results = [f.result() for f in futures]
        else:
            results = [
                _score_chunk(token, shard_id, chunk)
                for shard_id, chunk in tasks
            ]
        by_incident: dict[int, dict[str, tuple]] = {
            incident_id: {} for incident_id, _ in pairs
        }
        for chunk_result in results:
            for incident_id, scored in chunk_result:
                by_incident[incident_id][scored[0]] = scored
        return by_incident

    # -- composition -------------------------------------------------------

    def _compose(
        self, incident: Incident, scored: dict[str, tuple]
    ) -> FleetDecision:
        """Breaker-gate one incident's answers and run the Master policy.

        Runs in arrival order on the parent — breaker transitions are a
        serial fold over incidents, untouched by pool scheduling.
        """
        answers: list[ScoutAnswer] = []
        errors = 0
        breaker_open: list[str] = []
        for team in self.roster.teams:  # sorted — fixed gating order
            breaker = self.breakers[team]
            if not breaker.allow():
                breaker_open.append(team)
                self._m_answers.inc(1, status="breaker_open")
                continue
            _, verdict, confidence, attempts, ok = scored[team]
            if attempts > 1:
                self._m_answers.inc(attempts - 1, status="retry")
            if not ok:
                breaker.record_failure()
                errors += 1
                self._m_answers.inc(1, status="error")
                continue
            breaker.record_success()
            self._m_answers.inc(1, status="ok")
            answers.append(ScoutAnswer(team, verdict, confidence))

        truth = self._truth(incident)
        candidates, chain = self.policy.rank(answers)
        suggested: str | None = None
        reroutes = 0
        for team in chain:
            if self.breakers[team].state is BreakerState.OPEN:
                reroutes += 1
                continue
            if team == truth:
                suggested = team
                break
            accepted = (
                _draw(
                    self.roster.seed, "accept", team, incident.incident_id
                )
                < self.wrong_accept
            )
            if accepted:
                suggested = team
                break
            reroutes += 1  # the candidate bounced: walk the chain

        self._m_incidents.inc()
        if reroutes:
            self._m_reroutes.inc(reroutes)
        self._m_decisions.inc(
            1, result="suggested" if suggested else "legacy_fallback"
        )
        self._m_breakers.set(
            sum(
                1
                for b in self.breakers.values()
                if b.state is BreakerState.OPEN
            )
        )
        yes = sum(1 for a in answers if a.responsible is True)
        return FleetDecision(
            incident_id=incident.incident_id,
            truth_team=truth,
            suggested_team=suggested,
            candidates=candidates,
            chain=chain,
            reroutes=reroutes,
            answers_yes=yes,
            errors=errors,
            breaker_open=tuple(breaker_open),
        )

    # -- serving -----------------------------------------------------------

    def route_trace(self, incidents) -> list[FleetDecision]:
        """Route a batch of incidents; decisions come back in order."""
        incidents = list(incidents)
        if not incidents:
            return []
        started = self._clock()
        by_incident = self._score(incidents)
        decisions = [
            self._compose(incident, by_incident[incident.incident_id])
            for incident in incidents
        ]
        self._m_latency.observe(self._clock() - started)
        self.decisions.extend(decisions)
        return decisions

    def calibrate(self, incidents) -> int:
        """Fit the Master policy's reliability curve on a labeled trace.

        Scores the calibration incidents (no breakers, no decisions,
        no metrics) and fits confidence → observed accuracy across the
        whole fleet.  Returns the number of (answer, label) samples.
        """
        incidents = list(incidents)
        if not incidents:
            return 0
        by_incident = self._score(incidents)
        confidences: list[float] = []
        correct: list[bool] = []
        for incident in incidents:
            truth = self._truth(incident)
            for team, verdict, confidence, _, ok in by_incident[
                incident.incident_id
            ].values():
                if not ok or verdict is not True:
                    continue
                confidences.append(confidence)
                correct.append(team == truth)
        if confidences:
            self.policy.fit(confidences, correct)
        return len(confidences)

    # -- read-outs ---------------------------------------------------------

    def decision_records(self) -> list[dict]:
        """JSON-friendly decision log (stable order and keys)."""
        return [decision.to_record() for decision in self.decisions]

    def accuracy(self) -> float:
        """Fraction of routed incidents suggested to the truth team."""
        if not self.decisions:
            return 0.0
        hits = sum(
            1
            for d in self.decisions
            if d.suggested_team == d.truth_team
        )
        return hits / len(self.decisions)

    def summary(self) -> dict:
        """Plain-data roll-up for the CLI and the bench."""
        fallbacks = sum(
            1 for d in self.decisions if d.suggested_team is None
        )
        return {
            "teams": len(self.roster.specs),
            "shards": self.shard_count,
            "workers": self.workers,
            "incidents": len(self.decisions),
            "accuracy": round(self.accuracy(), 4),
            "reroutes": sum(d.reroutes for d in self.decisions),
            "legacy_fallbacks": fallbacks,
            "breakers_open": sum(
                1
                for b in self.breakers.values()
                if b.state is BreakerState.OPEN
            ),
        }
