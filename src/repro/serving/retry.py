"""Deterministic retry with backoff for transient monitoring failures.

The Scout's live pulls go to monitoring systems that can themselves be
degraded during an incident (§6).  A missed pull is usually transient —
the paper's answer for a *dead* monitor is imputation, but a flaky one
deserves a bounded, deterministic retry before the Scout gives up and
the serving layer records a fault.

``RetryPolicy`` is a frozen value object: ``max_attempts`` total tries,
a geometric backoff schedule (``backoff_seconds * multiplier**k``), and
no jitter — the delays are a pure function of the policy so tests and
replays are reproducible.  The sleeper is injectable; tests pass a fake
clock's ``advance`` and never actually wait.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from ..monitoring.faults import TransientMonitoringError

__all__ = ["RetryPolicy"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry for transient monitoring-store failures."""

    max_attempts: int = 3
    backoff_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    retryable: tuple[type[BaseException], ...] = (TransientMonitoringError,)
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be >= 0")

    def delays(self) -> list[float]:
        """The deterministic backoff schedule between attempts."""
        return [
            self.backoff_seconds * self.backoff_multiplier**k
            for k in range(self.max_attempts - 1)
        ]

    def call(self, fn: Callable[[], T]) -> T:
        """Run ``fn``, retrying retryable exceptions per the schedule.

        The final attempt's exception propagates unchanged; exceptions
        outside ``retryable`` never retry.
        """
        delays = self.delays()
        for attempt in range(self.max_attempts):
            try:
                return fn()
            except self.retryable:
                if attempt == self.max_attempts - 1:
                    raise
                self.sleep(delays[attempt])
        raise AssertionError("unreachable")  # pragma: no cover
