"""Streaming ingestion: sustained traffic, admission control, SLOs.

:class:`~.manager.IncidentManager.handle_batch` is a one-shot burst
API; production incident traffic is an unbounded stream (the regime
DeepTriage serves at Azure scale and TSGuard assumes for always-on
diagnosis).  :class:`StreamServer` is the long-lived front end over an
:class:`~.manager.IncidentManager`:

* **Bounded admission queue with backpressure.**  At most ``queue_cap``
  incidents wait for a Scout fan-out; the queue depth is the
  backpressure signal (exported as ``stream_queue_depth``) and an
  arrival that cannot be queued is *shed* immediately — it degrades to
  the legacy routing process instead of queuing forever.
* **Severity-based priority scheduling.**  The queue drains
  highest-severity-first (FIFO within a severity class); when the
  queue is full, a high-severity arrival evicts the newest
  lowest-severity waiter rather than being dropped itself — "all teams
  are involved in resolving the highest severity incidents" (§3.1), so
  those are the last decisions a Scout should skip.
* **Load shedding with a fast-path split.**  A shed incident is not
  silently lost: under :attr:`ShedPolicy.LEGACY` it falls back to the
  legacy router (no Scout work at all); under :attr:`ShedPolicy.TRIAGE`
  it takes the cheap *selector-only* fast path — component extraction
  plus EXCLUDE/scoping rules per registered Scout, no monitoring pulls,
  no model inference — the deterministic ~regex-cost path of the
  fast-path/smart-path split (SNIPPETS.md Snippet 2), which can still
  rule teams out and, when exactly one candidate survives, suggest it.
* **Per-stage p99 SLO budgets.**  :class:`SLOTracker` reads the
  *existing* obs histograms (``serving_handle_latency_seconds``,
  ``scout_call_latency_seconds``, and the new
  ``stream_queue_wait_seconds``) and computes **interval** p99s by
  diffing cumulative bucket counts between checks — a cumulative
  histogram's p99 never recovers, an interval one does.  A budget
  violation increments ``stream_slo_violations_total{stage=...}`` and
  flips the server into *degraded mode*, where sub-``HIGH`` arrivals
  are shed at admission until a clean check lets the backlog drain.

Everything is deterministic under an injectable
:class:`~repro.monitoring.faults.FakeClock`: the same seed and the same
arrival trace produce a byte-identical decision log, shed set, and
Prometheus exposition — the contract every prior subsystem honors.
Service time on a fake clock comes from whatever advances it (injected
monitoring latency via :class:`~repro.monitoring.faults.FaultyStore`,
or the explicit ``service_time`` floor).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..incidents.incident import Incident, Severity
from ..obs.metrics import bucket_quantile
from .manager import IncidentManager, ServingDecision

__all__ = [
    "STREAM_WAIT_BUCKETS",
    "ShedPolicy",
    "StreamStatus",
    "StreamOutcome",
    "SLOViolation",
    "SLOTracker",
    "StreamServer",
    "poisson_arrivals",
]

# Queue waits are not scout-call latencies: an overloaded stream parks
# incidents for whole seconds, where the default latency grid jumps
# 2.5 → 5 → 10 and a true p99 of ~4.2s reads as exactly 5.0 —
# indistinguishable from a 5-second budget sentinel.  The wait grid is
# dense through the single-digit seconds and extends to 10 minutes so
# a pathological backlog still resolves instead of clamping.
STREAM_WAIT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    0.75, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0, 6.0, 8.0,
    10.0, 15.0, 20.0, 30.0, 60.0, 120.0, 300.0, 600.0,
)


class ShedPolicy(str, Enum):
    """What happens to an incident the stream cannot afford to serve."""

    LEGACY = "legacy"  # fall back to the legacy router: no Scout work
    TRIAGE = "triage"  # selector-only fast path: extract + exclude rules


class StreamStatus(str, Enum):
    """How one streamed incident left the server."""

    SERVED = "served"
    SHED_LEGACY = "shed_legacy"
    SHED_TRIAGE = "shed_triage"


@dataclass(frozen=True)
class StreamOutcome:
    """One streamed incident's fate.

    ``decision`` is the manager's full :class:`ServingDecision` for
    served incidents and None for shed ones; ``triage_routes`` is the
    per-team selector verdict of the triage fast path (empty unless the
    incident was shed under :attr:`ShedPolicy.TRIAGE`).
    """

    incident_id: int
    status: StreamStatus
    severity: Severity
    submitted_at: float
    finished_at: float
    suggested_team: str | None = None
    queue_wait: float | None = None
    shed_reason: str | None = None
    decision: ServingDecision | None = None
    triage_routes: tuple[tuple[str, str], ...] = ()

    @property
    def shed(self) -> bool:
        return self.status is not StreamStatus.SERVED


@dataclass(frozen=True)
class SLOViolation:
    """One stage's interval p99 blowing its budget.

    ``saturated`` marks an interval whose p99 rank landed beyond the
    histogram's largest finite bucket: ``p99`` is then a *floor* (the
    top finite bound), and the violation stands no matter how the floor
    compares to the budget — an unresolvable p99 can never be declared
    within budget.
    """

    stage: str
    p99: float
    budget: float
    samples: int
    saturated: bool = False


# SLO stages resolve to histogram families the pipeline already emits;
# "queue" is the stream server's own wait histogram.
_STAGE_HISTOGRAMS = {
    "handle": "serving_handle_latency_seconds",
    "scout": "scout_call_latency_seconds",
    "queue": "stream_queue_wait_seconds",
}


class SLOTracker:
    """Interval-p99 budget enforcement over the existing histograms.

    Budgets map a stage name (``handle``, ``scout``, ``queue``) to a
    p99 latency budget in seconds.  Each :meth:`check` aggregates the
    stage histogram's bucket counts across label sets, diffs them
    against the previous check's snapshot, and reads the p99 of the
    *interval* with the same bucket-upper-bound rule
    :meth:`~repro.obs.metrics.Histogram.quantile` uses — a pure
    function of the recorded counts, so checks are deterministic.
    Intervals with fewer than ``min_samples`` observations return no
    verdict (an almost-empty window would let one outlier flap the
    degraded mode).
    """

    def __init__(self, metrics, budgets: dict[str, float], min_samples: int = 8) -> None:
        unknown = sorted(set(budgets) - set(_STAGE_HISTOGRAMS))
        if unknown:
            raise ValueError(
                f"unknown SLO stage(s) {unknown}; "
                f"known: {sorted(_STAGE_HISTOGRAMS)}"
            )
        for stage, budget in budgets.items():
            if budget <= 0:
                raise ValueError(f"SLO budget for {stage!r} must be > 0")
        self.metrics = metrics
        self.budgets = dict(budgets)
        self.min_samples = min_samples
        self._snapshots: dict[str, tuple[list[int], int]] = {}
        self._m_violations = metrics.counter(
            "stream_slo_violations_total",
            "SLO checks whose interval p99 exceeded the stage budget.",
            labels=("stage",),
        )
        self._m_p99 = metrics.gauge(
            "stream_slo_p99_seconds",
            "Interval p99 per SLO stage at the latest check with enough samples.",
            labels=("stage",),
        )

    def _aggregate(self, family) -> tuple[list[int], int]:
        """Bucket counts + total count summed across a family's series."""
        counts = [0] * len(family.buckets)
        total = 0
        for _, series in family.samples():
            for i, c in enumerate(series.bucket_counts):
                counts[i] += c
            total += series.count
        return counts, total

    def check(self) -> list[SLOViolation]:
        """Compare each budgeted stage's interval p99 to its budget."""
        violations: list[SLOViolation] = []
        for stage in sorted(self.budgets):
            family = self.metrics.get(_STAGE_HISTOGRAMS[stage])
            if family is None:
                continue
            counts, total = self._aggregate(family)
            prev_counts, prev_total = self._snapshots.get(
                stage, ([0] * len(counts), 0)
            )
            interval = [c - p for c, p in zip(counts, prev_counts)]
            samples = total - prev_total
            if samples < self.min_samples:
                # Too thin to judge — leave the snapshot where it was,
                # so a slow trickle accumulates into the next check
                # instead of never being judged at all.
                continue
            self._snapshots[stage] = (counts, total)
            readout = bucket_quantile(family.buckets, interval, samples, 0.99)
            p99 = readout.value
            self._m_p99.set(p99, stage=stage)
            budget = self.budgets[stage]
            if readout.saturated or p99 > budget:
                # A saturated read-out violates unconditionally: the
                # true p99 is somewhere above the top finite bucket, so
                # "p99 == budget" must not pass as within-budget.
                self._m_violations.inc(1, stage=stage)
                violations.append(
                    SLOViolation(
                        stage, p99, budget, samples,
                        saturated=readout.saturated,
                    )
                )
        return violations


@dataclass
class _Waiter:
    """One queued incident (admission ordinal breaks severity ties)."""

    seq: int
    incident: Incident
    enqueued_at: float
    submitted_at: float


def poisson_arrivals(
    n: int, rate: float, seed: int = 0, start: float = 0.0
) -> np.ndarray:
    """Deterministic open-loop Poisson arrival offsets (seconds).

    ``rate`` is incidents/second; offsets are a seeded exponential
    inter-arrival cumsum from ``start`` — the standard open-loop
    arrival process, bit-reproducible for a given ``(n, rate, seed)``.
    """
    if rate <= 0:
        raise ValueError("arrival rate must be > 0")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=n)
    return start + np.cumsum(gaps)


class StreamServer:
    """A queue-driven, SLO-enforcing ingestion tier over one manager.

    Parameters
    ----------
    manager:
        The :class:`IncidentManager` that serves admitted incidents
        (one at a time, on the caller's thread — the stream is the
        concurrency control, not a second thread pool).
    queue_cap:
        Maximum incidents waiting for a fan-out.  The full queue is
        the backpressure boundary: further arrivals shed.
    shed_policy:
        What a shed incident degrades to (see :class:`ShedPolicy`).
    slo:
        Optional ``{stage: p99_budget_seconds}`` map (stages:
        ``handle``, ``scout``, ``queue``) enforced by an
        :class:`SLOTracker` every ``slo_check_interval`` served
        incidents.  While any stage is in violation the server runs
        *degraded*: arrivals below ``degrade_floor`` shed at admission.
    clock:
        Time source; defaults to the manager's clock so stream
        bookkeeping and serving latencies share one timeline.
    sleeper:
        How to wait for the next arrival when idle.  Defaults to
        ``clock.advance`` when the clock is advanceable (a
        :class:`~repro.monitoring.faults.FakeClock`) and
        ``time.sleep`` otherwise.
    service_time:
        Deterministic load model for fake clocks: each served incident
        occupies the server for at least this many clock-seconds (the
        clock is advanced by the shortfall after the manager returns).
        Ignored unless the clock is advanceable.
    """

    def __init__(
        self,
        manager: IncidentManager,
        queue_cap: int = 64,
        shed_policy: ShedPolicy | str = ShedPolicy.LEGACY,
        slo: dict[str, float] | None = None,
        slo_check_interval: int = 32,
        slo_min_samples: int = 8,
        degrade_floor: Severity = Severity.HIGH,
        clock=None,
        sleeper=None,
        service_time: float = 0.0,
    ) -> None:
        if queue_cap < 1:
            raise ValueError("queue_cap must be >= 1")
        if slo_check_interval < 1:
            raise ValueError("slo_check_interval must be >= 1")
        if service_time < 0:
            raise ValueError("service_time must be >= 0")
        self.manager = manager
        self.queue_cap = queue_cap
        self.shed_policy = ShedPolicy(shed_policy)
        self.slo_check_interval = slo_check_interval
        self.degrade_floor = degrade_floor
        self.service_time = service_time
        self._clock = clock if clock is not None else manager._clock
        advance = getattr(self._clock, "advance", None)
        self._advance = advance  # None on a real clock
        if sleeper is not None:
            self._sleeper = sleeper
        elif advance is not None:
            self._sleeper = advance
        else:
            self._sleeper = time.sleep
        self.obs = manager.obs
        # Per-severity FIFO lanes: drain highest first, evict from the
        # newest end of the lowest.  Lanes exist up-front so the queue
        # logic never depends on which severities happened to arrive.
        self._lanes: dict[int, deque[_Waiter]] = {
            int(sev): deque() for sev in Severity
        }
        self._depth = 0
        self._seq = 0
        self._served = 0
        self._degraded = False
        # Deterministic control plane: (after_served, insertion seq,
        # action) triples fired between serves — see schedule().
        self._scheduled: list[tuple[int, int, object]] = []
        self._sched_seq = 0
        self.outcomes: list[StreamOutcome] = []
        self.tracker = (
            SLOTracker(self.obs.metrics, slo, min_samples=slo_min_samples)
            if slo
            else None
        )
        metrics = self.obs.metrics
        self._m_submitted = metrics.counter(
            "stream_submitted_total",
            "Incidents offered to the stream server, by severity.",
            labels=("severity",),
        )
        self._m_admitted = metrics.counter(
            "stream_admitted_total",
            "Incidents admitted to the queue, by severity.",
            labels=("severity",),
        )
        self._m_served = metrics.counter(
            "stream_served_total",
            "Incidents served through the full Scout fan-out, by severity.",
            labels=("severity",),
        )
        self._m_shed = metrics.counter(
            "stream_shed_total",
            "Incidents shed instead of queued, by cause and severity.",
            labels=("reason", "severity"),
        )
        self._m_triage = metrics.counter(
            "stream_triage_suggestions_total",
            "Shed incidents the selector-only fast path still routed.",
        )
        self._m_depth = metrics.gauge(
            "stream_queue_depth", "Incidents currently waiting in the queue."
        )
        self._m_wait = metrics.histogram(
            "stream_queue_wait_seconds",
            "Time from admission to the start of the Scout fan-out.",
            buckets=STREAM_WAIT_BUCKETS,
        )

    # -- introspection -----------------------------------------------------

    @property
    def depth(self) -> int:
        """Current queue depth (the backpressure signal)."""
        return self._depth

    @property
    def degraded(self) -> bool:
        """Is the server shedding proactively after an SLO violation?"""
        return self._degraded

    @property
    def shed_outcomes(self) -> list[StreamOutcome]:
        """The shed set, in shed order."""
        return [o for o in self.outcomes if o.shed]

    def summary(self) -> dict:
        """Plain-data roll-up of the stream counters."""
        submitted = self._m_submitted.total()
        shed = self._m_shed.total()
        return {
            "submitted": int(submitted),
            "served": self._served,
            "shed": int(shed),
            "shed_rate": (shed / submitted) if submitted else 0.0,
            "queue_depth": self._depth,
            "degraded": self._degraded,
        }

    # -- admission ---------------------------------------------------------

    @staticmethod
    def _sev_label(severity: Severity) -> str:
        return severity.name.lower()

    def submit(self, incident: Incident) -> StreamOutcome | None:
        """Offer one arrival; returns the shed outcome or None if queued.

        Admission control runs at the current clock time: a degraded
        server sheds sub-``degrade_floor`` severities outright; a full
        queue sheds the arrival unless it outranks the newest waiter of
        the lowest queued severity, in which case that waiter is
        evicted (and shed) instead.
        """
        severity = incident.severity
        self._m_submitted.inc(1, severity=self._sev_label(severity))
        now = self._clock()
        if self._degraded and severity < self.degrade_floor:
            return self._shed(incident, now, "slo_degraded")
        if self._depth >= self.queue_cap:
            victim = self._evictable(severity)
            if victim is None:
                return self._shed(incident, now, "queue_full")
            self.outcomes.append(
                self._shed(victim.incident, now, "queue_full",
                           submitted_at=victim.submitted_at)
            )
        self._seq += 1
        lane = self._lanes[int(severity)]
        lane.append(_Waiter(self._seq, incident, now, now))
        self._depth += 1
        self._m_admitted.inc(1, severity=self._sev_label(severity))
        self._m_depth.set(self._depth)
        return None

    def _evictable(self, severity: Severity) -> _Waiter | None:
        """Pop the newest waiter of the lowest queued severity class —
        but only when the arrival strictly outranks it."""
        for sev in sorted(self._lanes):
            lane = self._lanes[sev]
            if lane and sev < int(severity):
                self._depth -= 1
                self._m_depth.set(self._depth)
                return lane.pop()
        return None

    # -- shedding ----------------------------------------------------------

    def _shed(
        self,
        incident: Incident,
        now: float,
        reason: str,
        submitted_at: float | None = None,
    ) -> StreamOutcome:
        self._m_shed.inc(
            1, reason=reason, severity=self._sev_label(incident.severity)
        )
        with self.obs.trace.span(
            "stream.shed",
            incident_id=incident.incident_id,
            reason=reason,
            mode=self.shed_policy.value,
        ):
            if self.shed_policy is ShedPolicy.TRIAGE:
                suggested, routes = self._triage(incident)
                status = StreamStatus.SHED_TRIAGE
            else:
                suggested, routes = None, ()
                status = StreamStatus.SHED_LEGACY
        if suggested is not None:
            self._m_triage.inc()
        return StreamOutcome(
            incident_id=incident.incident_id,
            status=status,
            severity=incident.severity,
            submitted_at=now if submitted_at is None else submitted_at,
            finished_at=self._clock(),
            suggested_team=suggested,
            shed_reason=reason,
            triage_routes=routes,
        )

    def _triage(
        self, incident: Incident
    ) -> tuple[str | None, tuple[tuple[str, str], ...]]:
        """The selector-only fast path: rule teams out, never pull data.

        Runs each registered Scout's component extractor and selector —
        the deterministic front half of the pipeline — and skips
        features, monitoring, and model inference entirely.  A team
        whose EXCLUDE rules match is ruled out; a team whose selector
        would have routed to a model (components found, not excluded)
        is a *candidate*.  When exactly one candidate remains and every
        other team is excluded, the fast path suggests it; anything
        less conclusive falls back to the legacy router.
        """
        routes: list[tuple[str, str]] = []
        for team in sorted(self.manager._scouts):
            scout = self.manager._scouts[team]
            extractor = getattr(scout, "extractor", None)
            selector = getattr(scout, "selector", None)
            if extractor is None or selector is None:
                routes.append((team, "unknown"))
                continue
            extracted = extractor.extract(incident.text)
            decision = selector.decide(incident.title, incident.body, extracted)
            routes.append((team, decision.route.value))
        candidates = [
            team
            for team, route in routes
            if route in ("rf", "cpd+")
        ]
        others_ruled_out = all(
            route == "excluded"
            for team, route in routes
            if team not in candidates
        )
        suggested = (
            candidates[0] if len(candidates) == 1 and others_ruled_out else None
        )
        return suggested, tuple(routes)

    # -- control plane -----------------------------------------------------

    def schedule(self, after_served: int, action) -> None:
        """Run ``action()`` once the ``after_served``-th serve commits.

        The stream's deterministic control plane: instead of a wall-time
        trigger (which would race the arrival trace), an action is keyed
        to the served-incident counter — "swap PhyNet's model in after
        the 40th decision" lands at exactly the same stream position in
        every same-seed run.  Actions fire between serves, never inside
        one, so a hot-swap scheduled here can land mid-stream without
        shedding and without tearing a fan-out: the in-flight decision
        committed before the action runs, the next one sees its effect.
        ``after_served=0`` fires before the first serve of the next
        :meth:`run`.  Actions fire in (threshold, scheduling) order and
        exceptions propagate to the caller of :meth:`process_one` /
        :meth:`run` — a failed swap should stop the stream loudly, not
        serve on silently.
        """
        if after_served < 0:
            raise ValueError("after_served must be >= 0")
        self._sched_seq += 1
        self._scheduled.append((int(after_served), self._sched_seq, action))
        self._scheduled.sort(key=lambda item: item[:2])

    def _fire_scheduled(self) -> None:
        while self._scheduled and self._scheduled[0][0] <= self._served:
            _, _, action = self._scheduled.pop(0)
            action()

    # -- serving -----------------------------------------------------------

    def _pop_best(self) -> _Waiter:
        for sev in sorted(self._lanes, reverse=True):
            lane = self._lanes[sev]
            if lane:
                self._depth -= 1
                self._m_depth.set(self._depth)
                return lane.popleft()
        raise IndexError("queue is empty")

    def process_one(self) -> StreamOutcome:
        """Serve the highest-priority waiter through the manager."""
        waiter = self._pop_best()
        started = self._clock()
        wait = started - waiter.enqueued_at
        self._m_wait.observe(wait)
        decision = self.manager.handle(waiter.incident)
        if self._advance is not None and self.service_time > 0.0:
            shortfall = self.service_time - (self._clock() - started)
            if shortfall > 0.0:
                self._advance(shortfall)
        self._served += 1
        self._m_served.inc(
            1, severity=self._sev_label(waiter.incident.severity)
        )
        outcome = StreamOutcome(
            incident_id=waiter.incident.incident_id,
            status=StreamStatus.SERVED,
            severity=waiter.incident.severity,
            submitted_at=waiter.submitted_at,
            finished_at=self._clock(),
            suggested_team=decision.suggested_team,
            queue_wait=wait,
            decision=decision,
        )
        if self.tracker is not None and self._served % self.slo_check_interval == 0:
            self._degraded = bool(self.tracker.check())
        self._fire_scheduled()
        return outcome

    # -- the event loop ----------------------------------------------------

    def run(self, arrivals) -> list[StreamOutcome]:
        """Drive an open-loop arrival trace to completion.

        ``arrivals`` is an iterable of ``(offset_seconds, incident)``
        pairs, offsets measured from the moment ``run`` starts (they
        must be non-decreasing).  Arrivals whose offset has passed are
        admitted before each serve; when the server is idle it waits
        (``sleeper``) for the next arrival.  Returns every
        :class:`StreamOutcome` in completion order — shed outcomes
        land at shed time, served ones at completion, exactly the
        order a live observer would see.
        """
        pending = deque(arrivals)
        last = None
        for offset, _ in pending:
            if last is not None and offset < last:
                raise ValueError("arrival offsets must be non-decreasing")
            last = offset
        epoch = self._clock()
        first = len(self.outcomes)
        self._fire_scheduled()  # after_served=0 actions land up front
        while pending or self._depth:
            now = self._clock() - epoch
            while pending and pending[0][0] <= now:
                _, incident = pending.popleft()
                shed = self.submit(incident)
                if shed is not None:
                    self.outcomes.append(shed)
            if self._depth:
                self.outcomes.append(self.process_one())
                continue
            # Idle: nothing queued, next arrival in the future.
            wait = pending[0][0] - (self._clock() - epoch)
            if wait > 0:
                self._sleeper(wait)
        return self.outcomes[first:]
