"""The incident model.

"Incidents constitute unintended behavior that can potentially impact
service availability and performance. Incidents are reported by
customers, automated watchdogs, or discovered and reported manually by
operators." (§2)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["Severity", "IncidentSource", "Incident"]


class Severity(enum.IntEnum):
    """Incident severity. §3: all teams engage on the highest severity."""

    LOW = 0
    MEDIUM = 1
    HIGH = 2


class IncidentSource(str, enum.Enum):
    """How the incident was created (§2, Figure 1)."""

    CUSTOMER = "customer"            # CRI via the 24x7 support team
    OWN_MONITOR = "own_monitor"      # the studied team's own watchdogs
    OTHER_MONITOR = "other_monitor"  # another team's watchdogs


@dataclass
class Incident:
    """One incident, as the Scout and the routing simulators see it.

    ``responsible_team`` is the ground-truth owner (the team that found
    the root cause); ``recorded_team`` is the possibly-noisy label the
    incident-management system stores (§8: "Not all incidents have the
    right label").  ``scenario`` names the failure scenario that
    generated it — analysis-only metadata a real Scout would not have.
    """

    incident_id: int
    created_at: float  # seconds since simulation epoch
    title: str
    body: str
    severity: Severity
    source: IncidentSource
    source_team: str               # team whose monitor created it ("" for CRIs)
    responsible_team: str
    recorded_team: str = ""
    scenario: str = ""
    annotations: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.title and not self.body:
            raise ValueError("incident must have some text")
        if not self.recorded_team:
            self.recorded_team = self.responsible_team

    @property
    def text(self) -> str:
        """Full searchable text (title + body)."""
        return f"{self.title}\n{self.body}"

    def is_responsible(self, team: str) -> bool:
        return self.responsible_team == team

    def label(self, team: str) -> int:
        """Scout training label: 1 if ``team`` is responsible else 0.

        Uses the *recorded* owner — what a production training pipeline
        would actually have (§8).
        """
        return int(self.recorded_team == team)

    def true_label(self, team: str) -> int:
        """Ground-truth label, for measuring label-noise effects."""
        return int(self.responsible_team == team)
