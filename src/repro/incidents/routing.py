"""Routing traces: the path an incident took through teams.

The paper's internal logs "include records of the teams the incident
was routed through, the time spent in each team" (§3).  A
:class:`RoutingTrace` is that record for one incident; the §7 metrics
(gain-in/out, overhead-in/out) are all defined over these traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RoutingHop", "RoutingTrace"]


@dataclass(frozen=True)
class RoutingHop:
    """One team's stint investigating an incident."""

    team: str
    time_spent: float  # hours of investigation at this team

    def __post_init__(self) -> None:
        if self.time_spent < 0:
            raise ValueError("time_spent must be non-negative")


@dataclass
class RoutingTrace:
    """The ordered sequence of teams an incident visited.

    The last hop is the team that resolved the incident.  ``hops`` with
    a single entry means the incident was routed correctly on the first
    try.
    """

    incident_id: int
    hops: list[RoutingHop] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.hops:
            raise ValueError("a routing trace needs at least one hop")

    @property
    def teams(self) -> list[str]:
        return [hop.team for hop in self.hops]

    @property
    def resolved_by(self) -> str:
        return self.hops[-1].team

    @property
    def first_team(self) -> str:
        return self.hops[0].team

    @property
    def n_teams(self) -> int:
        """Distinct teams that investigated."""
        return len(set(self.teams))

    @property
    def total_time(self) -> float:
        return sum(hop.time_spent for hop in self.hops)

    @property
    def mis_routed(self) -> bool:
        """True when any team other than the resolver spent time."""
        return any(hop.team != self.resolved_by for hop in self.hops)

    def time_at(self, team: str) -> float:
        return sum(hop.time_spent for hop in self.hops if hop.team == team)

    def time_before(self, team: str) -> float:
        """Investigation time burned before the incident reached ``team``.

        This is the §3/Figure 3 quantity: the reduction a perfect router
        would achieve by sending the incident straight to ``team``.
        Returns the full duration if the incident never reached it.
        """
        elapsed = 0.0
        for hop in self.hops:
            if hop.team == team:
                return elapsed
            elapsed += hop.time_spent
        return elapsed

    def visited(self, team: str) -> bool:
        return team in set(self.teams)

    def was_waypoint(self, team: str) -> bool:
        """True if ``team`` investigated but did not resolve (Figure 4)."""
        return self.visited(team) and self.resolved_by != team
