"""Incident dataset container with the paper's split protocols."""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from dataclasses import asdict

import numpy as np

from ..ml.validation import imbalance_aware_split, time_based_windows
from .incident import Incident, IncidentSource, Severity
from .routing import RoutingHop, RoutingTrace

__all__ = ["IncidentStore"]


class IncidentStore:
    """An ordered collection of incidents plus their routing traces."""

    def __init__(
        self,
        incidents: Iterable[Incident] = (),
        traces: Iterable[RoutingTrace] = (),
    ) -> None:
        self._incidents: list[Incident] = list(incidents)
        self._traces: dict[int, RoutingTrace] = {
            trace.incident_id: trace for trace in traces
        }
        ids = [incident.incident_id for incident in self._incidents]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate incident ids")

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._incidents)

    def __iter__(self) -> Iterator[Incident]:
        return iter(self._incidents)

    def __getitem__(self, index: int) -> Incident:
        return self._incidents[index]

    def add(self, incident: Incident, trace: RoutingTrace | None = None) -> None:
        if any(i.incident_id == incident.incident_id for i in self._incidents):
            raise ValueError(f"duplicate incident id {incident.incident_id}")
        self._incidents.append(incident)
        if trace is not None:
            if trace.incident_id != incident.incident_id:
                raise ValueError("trace does not match incident")
            self._traces[incident.incident_id] = trace

    def trace(self, incident_id: int) -> RoutingTrace | None:
        return self._traces.get(incident_id)

    # -- views ----------------------------------------------------------------

    def subset(self, indices) -> "IncidentStore":
        incidents = [self._incidents[int(i)] for i in indices]
        traces = [
            self._traces[incident.incident_id]
            for incident in incidents
            if incident.incident_id in self._traces
        ]
        return IncidentStore(incidents, traces)

    def filter(self, predicate) -> "IncidentStore":
        keep = [i for i, inc in enumerate(self._incidents) if predicate(inc)]
        return IncidentStore(
            [self._incidents[i] for i in keep],
            [
                self._traces[self._incidents[i].incident_id]
                for i in keep
                if self._incidents[i].incident_id in self._traces
            ],
        )

    def labels(self, team: str) -> np.ndarray:
        return np.array([incident.label(team) for incident in self._incidents])

    def timestamps(self) -> np.ndarray:
        return np.array([incident.created_at for incident in self._incidents])

    def texts(self) -> list[str]:
        return [incident.text for incident in self._incidents]

    # -- paper split protocols -------------------------------------------------

    def paper_split(
        self, team: str, rng=None
    ) -> tuple["IncidentStore", "IncidentStore"]:
        """§7's imbalance-aware random split (50% pos / 35% neg train)."""
        train_idx, test_idx = imbalance_aware_split(self.labels(team), rng=rng)
        return self.subset(train_idx), self.subset(test_idx)

    def time_windows(
        self,
        retrain_interval_days: float,
        history_days: float | None = None,
        warmup_days: float | None = None,
    ) -> list[tuple["IncidentStore", "IncidentStore"]]:
        """§7.3's rolling retraining windows, in days."""
        day = 86400.0
        windows = time_based_windows(
            self.timestamps(),
            retrain_interval=retrain_interval_days * day,
            history_window=None if history_days is None else history_days * day,
            warmup=None if warmup_days is None else warmup_days * day,
        )
        return [
            (self.subset(train_idx), self.subset(eval_idx))
            for train_idx, eval_idx in windows
        ]

    # -- (de)serialization -------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "incidents": [
                {
                    **asdict(incident),
                    "severity": int(incident.severity),
                    "source": incident.source.value,
                }
                for incident in self._incidents
            ],
            "traces": [
                {
                    "incident_id": trace.incident_id,
                    "hops": [
                        {"team": hop.team, "time_spent": hop.time_spent}
                        for hop in trace.hops
                    ],
                }
                for trace in self._traces.values()
            ],
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "IncidentStore":
        payload = json.loads(text)
        incidents = [
            Incident(
                incident_id=item["incident_id"],
                created_at=item["created_at"],
                title=item["title"],
                body=item["body"],
                severity=Severity(item["severity"]),
                source=IncidentSource(item["source"]),
                source_team=item["source_team"],
                responsible_team=item["responsible_team"],
                recorded_team=item["recorded_team"],
                scenario=item.get("scenario", ""),
                annotations=item.get("annotations", {}),
            )
            for item in payload["incidents"]
        ]
        traces = [
            RoutingTrace(
                incident_id=item["incident_id"],
                hops=[
                    RoutingHop(hop["team"], hop["time_spent"])
                    for hop in item["hops"]
                ],
            )
            for item in payload["traces"]
        ]
        return cls(incidents, traces)
