"""Synthetic incident-description generation.

Incident text in the wild is messy: "the text of the incident often
describes the symptoms observed but does not reflect the actual state
of the network's components; [and] it is often noisy — it contains logs
of conversation which often lead the ML model astray" (§7).  The
generator reproduces both properties: the wording follows the
*observed symptom* (which correlates with the team whose watchdog
fired, not necessarily the responsible team), and optional
conversation-noise paragraphs mention unrelated teams and components.
"""

from __future__ import annotations

import numpy as np

from ..ml.base import as_rng

__all__ = ["IncidentTextGenerator"]

# Symptom phrasebook keyed by symptom tag.  Scenarios declare which
# symptom the watchdog (or customer) observed.
_SYMPTOM_TEMPLATES: dict[str, list[str]] = {
    "connectivity_loss": [
        "Customers report intermittent connection failures to {targets}.",
        "Probes show packet loss reaching {targets}.",
        "Connectivity to {targets} is degraded; retries exceed threshold.",
    ],
    "latency": [
        "Latency alert: round-trip times to {targets} exceed the SLA.",
        "P99 latency regression detected involving {targets}.",
        "Slow responses observed when reaching {targets}.",
    ],
    "storage_failure": [
        "Virtual disk failures across {targets}; IO requests time out.",
        "Storage account access errors observed on {targets}.",
        "Customers cannot mount file-shares backed by {targets}.",
    ],
    "vm_crash": [
        "VMs on {targets} are rebooting frequently.",
        "Unexpected VM restarts detected on {targets}.",
        "Guest OS heartbeats lost for VMs on {targets}.",
    ],
    "dns_failure": [
        "Name resolution failures for services in {targets}.",
        "DNS lookups time out for records served from {targets}.",
    ],
    "lb_failure": [
        "Virtual IP availability drop behind the load balancer in {targets}.",
        "SLB health probes fail for backends in {targets}.",
    ],
    "auth_failure": [
        "Login attempts fail for tenants homed in {targets}.",
        "Token issuance errors for workloads in {targets}.",
    ],
    "throughput": [
        "Throughput collapse on flows crossing {targets}.",
        "RDMA transfers stall between endpoints in {targets}.",
    ],
    "hardware": [
        "Hardware health alert raised for {targets}.",
        "Device diagnostics report faults on {targets}.",
    ],
    "db_errors": [
        "Database query timeouts for instances on {targets}.",
        "Replication lag spike for databases hosted on {targets}.",
    ],
}

_WATCHDOG_PREFIX = [
    "[auto] Watchdog {monitor} triggered.",
    "[auto] Alert fired by {monitor}.",
    "[auto] {monitor} detected an anomaly.",
]

_CRI_PREFIX = [
    "Support ticket from customer.",
    "Customer reported via support portal.",
    "Escalation from 24x7 support.",
]

_NOISE_SENTENCES = [
    "Engineer joined the bridge and is collecting traces.",
    "Mitigation attempt: restarted the agent, no improvement.",
    "Please attach recent deployment history to this ticket.",
    "Linked to parent work item for tracking.",
    "Customer impact is under assessment.",
    "Previous similar issue was resolved by another team.",
    "Checked dashboards, nothing obvious on the host metrics.",
    "DNS looks clean per resolver logs.",
    "Possibly related to the ongoing fabric rollout.",
    "Escalating per runbook after 30 minutes without progress.",
]


class IncidentTextGenerator:
    """Renders incident titles/bodies from scenario metadata."""

    def __init__(self, rng: int | np.random.Generator | None = None) -> None:
        self._rng = as_rng(rng)

    def _pick(self, options: list[str]) -> str:
        return options[int(self._rng.integers(len(options)))]

    def render(
        self,
        symptom: str,
        component_names: list[str],
        from_monitor: str | None = None,
        noise_sentences: int = 2,
        omit_components: bool = False,
        detail: str | None = None,
    ) -> tuple[str, str]:
        """Return ``(title, body)`` for one incident.

        ``omit_components`` models CRIs that "often do not include
        necessary information" (§7.4): the component names are withheld
        from the text entirely.  ``detail`` is the diagnostic phrasing a
        team's *own* watchdog emits (team-specific vocabulary); it is
        absent when another team's monitor — which only sees the
        symptom — created the incident.
        """
        if symptom not in _SYMPTOM_TEMPLATES:
            raise ValueError(f"unknown symptom tag: {symptom!r}")
        if omit_components or not component_names:
            targets = "the affected resources"
        else:
            shown = list(component_names)
            self._rng.shuffle(shown)
            targets = ", ".join(shown[:4])
        headline = self._pick(_SYMPTOM_TEMPLATES[symptom]).format(targets=targets)
        if from_monitor:
            prefix = self._pick(_WATCHDOG_PREFIX).format(monitor=from_monitor)
        else:
            prefix = self._pick(_CRI_PREFIX)
        title = headline.split(";")[0].split(".")[0]
        body_parts = [prefix, headline]
        if detail:
            body_parts.append(detail)
        for _ in range(noise_sentences):
            body_parts.append(self._pick(_NOISE_SENTENCES))
        return title, " ".join(body_parts)
