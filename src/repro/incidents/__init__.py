"""Incident substrate: incident model, routing traces, text generation."""

from .incident import Incident, IncidentSource, Severity
from .routing import RoutingHop, RoutingTrace
from .store import IncidentStore
from .text_gen import IncidentTextGenerator

__all__ = [
    "Incident",
    "IncidentSource",
    "IncidentStore",
    "IncidentTextGenerator",
    "RoutingHop",
    "RoutingTrace",
    "Severity",
]
