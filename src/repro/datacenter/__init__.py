"""Datacenter topology substrate: components, naming, dependency graph."""

from .components import Component, ComponentKind
from .naming import (
    DEFAULT_NAME_PATTERNS,
    cluster_name,
    dc_name,
    kind_of_name,
    server_name,
    switch_name,
    vm_name,
)
from .topology import Topology, TopologySpec, build_topology

__all__ = [
    "Component",
    "ComponentKind",
    "DEFAULT_NAME_PATTERNS",
    "Topology",
    "TopologySpec",
    "build_topology",
    "cluster_name",
    "dc_name",
    "kind_of_name",
    "server_name",
    "switch_name",
    "vm_name",
]
