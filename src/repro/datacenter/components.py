"""Component identity model for the synthetic cloud.

The paper's Scouts reason about *components* — "DC sub-systems such as
VMs, switches, and servers" (§5.1).  Every component has a *kind* (the
paper's component type: the PhyNet config declares VM, server, switch,
cluster, DC) and a machine-generated hierarchical name.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["ComponentKind", "Component"]


class ComponentKind(str, enum.Enum):
    """Component types known to the topology abstraction."""

    VM = "vm"
    SERVER = "server"
    SWITCH = "switch"
    CLUSTER = "cluster"
    DC = "dc"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, order=True)
class Component:
    """One addressable component of the datacenter.

    ``name`` is the fully-qualified machine name (e.g. ``vm-3.c10.dc3``)
    that incident text refers to; components are compared by name so the
    same component extracted from two incidents is equal.
    """

    kind: ComponentKind
    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("component name must be non-empty")

    @property
    def cluster_name(self) -> str | None:
        """The ``cK.dcJ`` suffix for components below cluster level."""
        parts = self.name.split(".")
        for i, part in enumerate(parts):
            if part.startswith("c") and part[1:].isdigit():
                return ".".join(parts[i:])
        return None

    @property
    def dc_name(self) -> str:
        """The trailing ``dcJ`` label."""
        return self.name.split(".")[-1]

    def __str__(self) -> str:
        return f"{self.kind.value}:{self.name}"
