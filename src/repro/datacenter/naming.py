"""Machine-generated component names and the regexes that extract them.

The paper: "Operators typically use machine-generated names for these
components and can specify how they can be extracted from the incident
using regular expressions" (§5.1).  Our synthetic cloud uses a
consistent naming scheme so both the generators and the Scout config
agree:

========  ==========================  =======================
kind      format                      example
========  ==========================  =======================
DC        ``dc<j>``                   ``dc3``
cluster   ``c<k>.dc<j>``              ``c10.dc3``
switch    ``sw-<role><i>.c<k>.dc<j>`` ``sw-tor4.c10.dc3``
server    ``srv-<i>.c<k>.dc<j>``      ``srv-17.c10.dc3``
VM        ``vm-<i>.c<k>.dc<j>``       ``vm-42.c10.dc3``
========  ==========================  =======================
"""

from __future__ import annotations

from .components import ComponentKind

__all__ = [
    "dc_name",
    "cluster_name",
    "switch_name",
    "server_name",
    "vm_name",
    "DEFAULT_NAME_PATTERNS",
    "kind_of_name",
]

# Switch roles in a cluster: top-of-rack, aggregation, spine.
SWITCH_ROLES = ("tor", "agg", "spine")


def dc_name(dc: int) -> str:
    return f"dc{dc}"


def cluster_name(cluster: int, dc: int) -> str:
    return f"c{cluster}.{dc_name(dc)}"


def switch_name(role: str, index: int, cluster: int, dc: int) -> str:
    if role not in SWITCH_ROLES:
        raise ValueError(f"unknown switch role: {role!r}")
    return f"sw-{role}{index}.{cluster_name(cluster, dc)}"


def server_name(index: int, cluster: int, dc: int) -> str:
    return f"srv-{index}.{cluster_name(cluster, dc)}"


def vm_name(index: int, cluster: int, dc: int) -> str:
    return f"vm-{index}.{cluster_name(cluster, dc)}"


# The extraction regexes a PhyNet-style Scout config would declare
# (``let VM = <regex>;`` in §5.1).  Cluster/DC patterns use word
# boundaries with negative lookbehind so that the embedded suffix of a
# VM name does not double as a standalone cluster mention — the cluster
# is still reachable through dependency expansion.
DEFAULT_NAME_PATTERNS: dict[ComponentKind, str] = {
    ComponentKind.VM: r"\bvm-\d+\.c\d+\.dc\d+\b",
    ComponentKind.SERVER: r"\bsrv-\d+\.c\d+\.dc\d+\b",
    ComponentKind.SWITCH: r"\bsw-(?:tor|agg|spine)\d+\.c\d+\.dc\d+\b",
    ComponentKind.CLUSTER: r"(?<![.\w-])c\d+\.dc\d+\b",
    ComponentKind.DC: r"(?<![.\w-])dc\d+\b",
}


def kind_of_name(name: str) -> ComponentKind | None:
    """Classify a fully-qualified name by its prefix."""
    if name.startswith("vm-"):
        return ComponentKind.VM
    if name.startswith("srv-"):
        return ComponentKind.SERVER
    if name.startswith("sw-"):
        return ComponentKind.SWITCH
    if name.startswith("c") and "." in name and name.split(".")[0][1:].isdigit():
        return ComponentKind.CLUSTER
    if name.startswith("dc") and name[2:].isdigit():
        return ComponentKind.DC
    return None
