"""Synthetic datacenter topology with dependency expansion.

Replaces the provider's "logical/physical topology abstractions" [52]
that real Scouts use to resolve component dependencies (§5.1).  The
topology is a containment tree (DC → cluster → rack → server → VM, with
ToR/agg/spine switches attached to racks and clusters) stored in a
:mod:`networkx` DiGraph, plus helpers the Scout framework calls:

* :meth:`Topology.component` — name → :class:`Component`;
* :meth:`Topology.expand_dependencies` — the components a given
  component depends on (e.g. a VM depends on its server, its ToR, its
  cluster fabric and its DC);
* :meth:`Topology.members` — children of a container (e.g. all switches
  of a cluster), used when an incident implicates a whole cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from . import naming
from .components import Component, ComponentKind

__all__ = ["TopologySpec", "Topology", "build_topology"]


@dataclass(frozen=True)
class TopologySpec:
    """Sizing knobs for the synthetic cloud."""

    n_dcs: int = 2
    clusters_per_dc: int = 4
    racks_per_cluster: int = 4
    servers_per_rack: int = 4
    vms_per_server: int = 2
    agg_switches_per_cluster: int = 2
    spine_switches_per_dc: int = 4

    def __post_init__(self) -> None:
        for field_name in (
            "n_dcs",
            "clusters_per_dc",
            "racks_per_cluster",
            "servers_per_rack",
            "vms_per_server",
            "agg_switches_per_cluster",
            "spine_switches_per_dc",
        ):
            if getattr(self, field_name) < 1:
                raise ValueError(f"{field_name} must be >= 1")


class Topology:
    """A fitted containment/dependency graph over named components.

    Edges point from container to contained (``dc3 -> c10.dc3``) and
    from dependent to dependency for cross-tree links
    (``srv-1.c10.dc3 -> sw-tor0.c10.dc3``).
    """

    def __init__(self, graph: nx.DiGraph, spec: TopologySpec) -> None:
        self._graph = graph
        self.spec = spec
        # The topology is immutable once built; containment and
        # dependency queries are memoized (they run in the Scout's
        # per-incident hot path).
        self._members_cache: dict[tuple[str, ComponentKind | None], list[Component]] = {}
        self._deps_cache: dict[str, list[Component]] = {}

    # -- lookup ------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._graph

    def component(self, name: str) -> Component:
        if name not in self._graph:
            raise KeyError(f"unknown component: {name!r}")
        return Component(self._graph.nodes[name]["kind"], name)

    def components(self, kind: ComponentKind) -> list[Component]:
        """All components of one kind, sorted by name."""
        return sorted(
            Component(kind, name)
            for name, data in self._graph.nodes(data=True)
            if data["kind"] == kind
        )

    @property
    def n_components(self) -> int:
        return self._graph.number_of_nodes()

    # -- containment -------------------------------------------------------

    def _contained_children(self, name: str) -> list[str]:
        """Successors along containment (non-dependency) edges only."""
        return [
            succ
            for succ in self._graph.successors(name)
            if not self._graph.edges[name, succ].get("dependency")
        ]

    def members(
        self, name: str, kind: ComponentKind | None = None
    ) -> list[Component]:
        """Components contained (transitively) under ``name``.

        Traversal follows containment edges only, so e.g. a cluster's
        members never leak into the DC-level spine switches its
        aggregation layer *depends on*.
        """
        if name not in self._graph:
            raise KeyError(f"unknown component: {name!r}")
        cached = self._members_cache.get((name, kind))
        if cached is not None:
            return list(cached)
        out = []
        frontier = self._contained_children(name)
        seen = set(frontier)
        while frontier:
            node = frontier.pop()
            node_kind = self._graph.nodes[node]["kind"]
            if kind is None or node_kind == kind:
                out.append(Component(node_kind, node))
            for child in self._contained_children(node):
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
        out.sort()
        self._members_cache[(name, kind)] = out
        return list(out)

    def container(
        self, name: str, kind: ComponentKind
    ) -> Component | None:
        """The enclosing component of ``kind`` (e.g. a VM's cluster)."""
        if name not in self._graph:
            raise KeyError(f"unknown component: {name!r}")
        frontier = [name]
        seen = set(frontier)
        while frontier:
            node = frontier.pop()
            for parent in self._graph.predecessors(node):
                if self._graph.edges[parent, node].get("dependency"):
                    continue
                if parent in seen:
                    continue
                seen.add(parent)
                if self._graph.nodes[parent]["kind"] == kind:
                    return Component(kind, parent)
                frontier.append(parent)
        return None

    # -- dependencies ------------------------------------------------------

    def expand_dependencies(self, name: str) -> list[Component]:
        """Components ``name`` directly or structurally depends on.

        A VM depends on its host server; a server on its ToR switch; all
        leaf components on their cluster and DC.  This mirrors how the
        PhyNet Scout widens an incident that only mentions a VM into the
        switches/servers/clusters whose monitoring data matters.
        """
        if name not in self._graph:
            raise KeyError(f"unknown component: {name!r}")
        cached = self._deps_cache.get(name)
        if cached is not None:
            return list(cached)
        deps: set[Component] = set()
        kind = self._graph.nodes[name]["kind"]
        # Structural ancestors: cluster and DC always matter.
        for container_kind in (ComponentKind.CLUSTER, ComponentKind.DC):
            if kind == container_kind:
                continue
            container = self.container(name, container_kind)
            if container is not None:
                deps.add(container)
        # Explicit dependency edges (VM -> server, server -> ToR, ...).
        for succ in self._graph.successors(name):
            if self._graph.edges[name, succ].get("dependency"):
                deps.add(self.component(succ))
        # One more hop: a VM also depends on its server's ToR.
        for dep in list(deps):
            for succ in self._graph.successors(dep.name):
                if self._graph.edges[dep.name, succ].get("dependency"):
                    deps.add(self.component(succ))
        deps.discard(self.component(name))
        result = sorted(deps)
        self._deps_cache[name] = result
        return list(result)


def build_topology(spec: TopologySpec | None = None) -> Topology:
    """Construct the synthetic cloud described by ``spec``."""
    spec = spec or TopologySpec()
    graph = nx.DiGraph()

    for dc in range(spec.n_dcs):
        dc_label = naming.dc_name(dc)
        graph.add_node(dc_label, kind=ComponentKind.DC)
        # Spine switches are DC-level; they live in the reserved "c0"
        # namespace of their DC.
        spines = [
            naming.switch_name("spine", s, 0, dc)
            for s in range(spec.spine_switches_per_dc)
        ]
        # Clusters are 1-indexed: the "c0" namespace is reserved for the
        # DC-level spine switches.
        for cluster in range(1, spec.clusters_per_dc + 1):
            cluster_label = naming.cluster_name(cluster, dc)
            graph.add_node(cluster_label, kind=ComponentKind.CLUSTER)
            graph.add_edge(dc_label, cluster_label)
            aggs = []
            for a in range(spec.agg_switches_per_cluster):
                agg = naming.switch_name("agg", a, cluster, dc)
                graph.add_node(agg, kind=ComponentKind.SWITCH)
                graph.add_edge(cluster_label, agg)
                aggs.append(agg)
            server_index = 0
            vm_index = 0
            for rack in range(spec.racks_per_cluster):
                tor = naming.switch_name("tor", rack, cluster, dc)
                graph.add_node(tor, kind=ComponentKind.SWITCH)
                graph.add_edge(cluster_label, tor)
                for agg in aggs:
                    graph.add_edge(tor, agg, dependency=True)
                for _ in range(spec.servers_per_rack):
                    server = naming.server_name(server_index, cluster, dc)
                    server_index += 1
                    graph.add_node(server, kind=ComponentKind.SERVER)
                    graph.add_edge(cluster_label, server)
                    graph.add_edge(server, tor, dependency=True)
                    for _ in range(spec.vms_per_server):
                        vm = naming.vm_name(vm_index, cluster, dc)
                        vm_index += 1
                        graph.add_node(vm, kind=ComponentKind.VM)
                        graph.add_edge(server, vm)
                        graph.add_edge(vm, server, dependency=True)
        # Spine switches hang off the DC; every cluster's aggs depend on
        # them.
        for spine in spines:
            graph.add_node(spine, kind=ComponentKind.SWITCH)
            graph.add_edge(dc_label, spine)
        for cluster in range(1, spec.clusters_per_dc + 1):
            for a in range(spec.agg_switches_per_cluster):
                agg = naming.switch_name("agg", a, cluster, dc)
                for spine in spines:
                    graph.add_edge(agg, spine, dependency=True)

    return Topology(graph, spec)
