"""The legacy incident-routing process (the paper's baseline).

"Operators use run-books, past-experience, and a natural language
processing (NLP)-based recommendation system to route incidents" (§2).
This module simulates that process as a stochastic hop chain calibrated
to §3's measurements:

* watchdog incidents start at the team whose monitor fired;
* CRIs start at a support-team guess driven by the observed symptom;
* wrong teams spend real time "proving their innocence" before the
  incident moves on — mis-routed incidents end up roughly 10× slower
  than directly-routed ones (Figure 2);
* the next suspect is biased toward dependencies of the impacted
  system, which is how PhyNet ends up a waypoint in ~35% of incidents
  it sees (Figure 4);
* the highest-severity incidents engage many teams at once ("all teams
  are involved in resolving the highest severity incidents", §3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..incidents.incident import IncidentSource, Severity
from ..incidents.routing import RoutingHop, RoutingTrace
from ..ml.base import as_rng
from .scenarios import ScenarioInstance
from .teams import CUSTOMER, PHYNET, TeamRegistry

__all__ = ["RoutingModel", "RoutedOutcome"]


@dataclass(frozen=True)
class RoutedOutcome:
    """How the legacy process created and routed one incident."""

    source: IncidentSource
    source_team: str
    trace: RoutingTrace


@dataclass
class RoutingModel:
    """Stochastic legacy-routing simulator.

    Time units are hours.  ``resolve_hours`` is the median time the
    responsible team needs once it has the incident; ``wrong_hop_factor``
    scales the median time burned at each wrong team (queueing,
    acknowledgment, proving innocence) relative to that.
    """

    registry: TeamRegistry
    resolve_hours: float = 1.0
    wrong_hop_factor: float = 6.0
    sigma: float = 0.6
    # Probability a watchdog's built-in rules route its incident to the
    # detecting team itself (they usually do).
    own_team_first: float = 0.95
    # Per-hop probability the investigating team correctly identifies the
    # responsible team as the next hop (grows as teams are eliminated).
    base_find_prob: float = 0.4
    max_wrong_hops: int = 6

    def _lognormal(self, rng: np.random.Generator, median: float) -> float:
        return float(median * np.exp(rng.normal(0.0, self.sigma)))

    def _first_team(
        self,
        instance: ScenarioInstance,
        source: IncidentSource,
        source_team: str,
        rng: np.random.Generator,
    ) -> str:
        if source is not IncidentSource.CUSTOMER:
            if rng.random() < self.own_team_first:
                return source_team
            return self._suspect_for_symptom(instance, rng, exclude=())
        # CRI: the 24x7 support team guesses from the symptom.
        return self._suspect_for_symptom(instance, rng, exclude=())

    def _suspect_for_symptom(
        self,
        instance: ScenarioInstance,
        rng: np.random.Generator,
        exclude: tuple[str, ...],
    ) -> str:
        symptom = instance.scenario.symptom
        candidates = [
            name
            for name in self.registry.suspects_for_symptom(symptom)
            if name != CUSTOMER and name not in exclude
        ]
        if not candidates:
            candidates = [
                name
                for name in self.registry.internal_names
                if name not in exclude
            ]
        # The true responsible team's watchdogs describe their own
        # symptoms, so it is a more likely guess when it matches.
        responsible = instance.scenario.responsible
        weights = np.array(
            [
                3.0 if name == responsible
                else 1.5 if name == PHYNET
                else 1.0
                for name in candidates
            ]
        )
        weights /= weights.sum()
        return candidates[int(rng.choice(len(candidates), p=weights))]

    def _next_team(
        self,
        current: str,
        instance: ScenarioInstance,
        visited: list[str],
        rng: np.random.Generator,
    ) -> str:
        responsible = instance.scenario.responsible
        # Teams are eliminated as they prove innocence, so the chance the
        # next hop is correct grows with each hand-off.
        find_prob = min(
            0.97, self.base_find_prob + 0.15 * max(0, len(visited) - 1)
        )
        if responsible == CUSTOMER:
            # External causes keep the hunt going internally (§3.2:
            # "when no teams are responsible, more teams get involved").
            find_prob *= 0.5
        if rng.random() < find_prob:
            return responsible
        # Wrong guess: dependencies of the current team are legitimate
        # suspects — this is the paper's most common mis-route cause.
        deps = [d for d in self.registry.dependencies(current) if d not in visited]
        if deps and rng.random() < 0.8:
            # PhyNet underpins nearly everything, making it the most
            # common spurious waypoint.
            weights = np.array([4.0 if d == PHYNET else 1.0 for d in deps])
            weights /= weights.sum()
            return deps[int(rng.choice(len(deps), p=weights))]
        return self._suspect_for_symptom(instance, rng, exclude=tuple(visited))

    def route(
        self,
        instance: ScenarioInstance,
        incident_id: int,
        rng: int | np.random.Generator | None = None,
    ) -> RoutedOutcome:
        """Simulate creation + legacy routing for one scenario instance."""
        rng = as_rng(rng)
        scenario = instance.scenario
        responsible = scenario.responsible

        # -- creation source ------------------------------------------------
        if scenario.detected_by == "customer" or rng.random() < scenario.cri_prob:
            source = IncidentSource.CUSTOMER
            source_team = ""
        else:
            if scenario.detected_by == "responsible":
                detector = responsible
            elif rng.random() < 0.6:
                detector = scenario.detected_by
            else:
                detector = responsible
            if detector == CUSTOMER:
                source = IncidentSource.CUSTOMER
                source_team = ""
            else:
                source = (
                    IncidentSource.OWN_MONITOR
                    if detector == responsible
                    else IncidentSource.OTHER_MONITOR
                )
                source_team = detector

        # -- hop chain --------------------------------------------------------
        hops: list[RoutingHop] = []
        current = self._first_team(instance, source, source_team, rng)
        visited = [current]
        wrong_hops = 0
        while current != responsible:
            hops.append(
                RoutingHop(
                    current,
                    self._lognormal(
                        rng, self.resolve_hours * self.wrong_hop_factor
                    ),
                )
            )
            wrong_hops += 1
            if wrong_hops >= self.max_wrong_hops:
                current = responsible
                break
            current = self._next_team(current, instance, visited, rng)
            if current not in visited:
                visited.append(current)
        # The responsible team's own (resolving) stint.
        hops.append(RoutingHop(responsible, self._lognormal(rng, self.resolve_hours)))

        # Highest-severity incidents pull in extra teams regardless of
        # routing quality (§3.1) — modeled as parallel short stints.
        if instance.severity is Severity.HIGH:
            extras = [
                name
                for name in self.registry.internal_names
                if name not in {hop.team for hop in hops}
            ]
            rng.shuffle(extras)
            for name in extras[:4]:
                hops.insert(
                    len(hops) - 1,
                    RoutingHop(name, self._lognormal(rng, 0.3 * self.resolve_hours)),
                )

        return RoutedOutcome(
            source=source,
            source_team=source_team,
            trace=RoutingTrace(incident_id=incident_id, hops=hops),
        )
