"""The provider's NLP-based recommendation system (§2, §7, Table 1).

"A multi-class classifier that only takes the incident description as
input ... The classifier produces a ranked list (along with categorical
— high, medium, and low — confidence scores) as a recommendation to
the operator."  It is precise but misses incidents whose text does not
reflect component state — the weakness Scouts fix by reading monitoring
data.

Implementation: TF-IDF features over the incident text into a softmax
(multinomial logistic regression) classifier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..incidents.incident import Incident
from ..ml.linear import LogisticRegression
from ..ml.text import TfidfVectorizer

__all__ = ["Recommendation", "NlpRouter"]


@dataclass(frozen=True)
class Recommendation:
    """A ranked routing recommendation for one incident."""

    ranked_teams: tuple[str, ...]
    probabilities: tuple[float, ...]

    @property
    def top(self) -> str:
        return self.ranked_teams[0]

    @property
    def confidence_label(self) -> str:
        """The categorical confidence the production system exposes."""
        top = self.probabilities[0]
        if top >= 0.7:
            return "high"
        if top >= 0.4:
            return "medium"
        return "low"


class NlpRouter:
    """Text-only multi-class incident router."""

    def __init__(
        self, max_features: int = 400, min_df: int = 2
    ) -> None:
        self._vectorizer = TfidfVectorizer(max_features=max_features, min_df=min_df)
        self._model = LogisticRegression(max_iter=400)
        self._fitted = False

    def fit(self, incidents) -> "NlpRouter":
        """Train on incidents' text → recorded owning team."""
        texts = [incident.text for incident in incidents]
        labels = np.array([incident.recorded_team for incident in incidents])
        if len(np.unique(labels)) < 2:
            raise ValueError("need incidents from at least two teams")
        X = self._vectorizer.fit_transform(texts)
        self._model.fit(X, labels)
        self._fitted = True
        return self

    def recommend(self, incident: Incident) -> Recommendation:
        if not self._fitted:
            raise RuntimeError("NlpRouter must be fitted first")
        X = self._vectorizer.transform([incident.text])
        proba = self._model.predict_proba(X)[0]
        order = np.argsort(-proba)
        return Recommendation(
            ranked_teams=tuple(str(self._model.classes_[i]) for i in order),
            probabilities=tuple(float(proba[i]) for i in order),
        )

    def predict_team(self, incident: Incident) -> str:
        return self.recommend(incident).top

    def predict_is_team(self, incident: Incident, team: str) -> bool:
        """Binary view for Table 1's per-team comparison."""
        return self.predict_team(incident) == team
