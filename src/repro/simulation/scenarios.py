"""The failure-scenario library.

Each :class:`Scenario` describes one root-cause class observed in §3's
incident study: who is responsible, what symptom the watchdog or
customer observes, which components are implicated, and how the failure
distorts the monitoring plane.  Instantiating a scenario at a timestamp
yields concrete :class:`~repro.monitoring.base.FailureEffect`s plus the
component names the incident text will mention.

The library deliberately includes the paper's hard cases:

* scenarios with **no monitoring signature** (DHCP misconfiguration —
  §7.2 "none of the monitoring data captures the incident's symptoms");
* **transient** incidents whose signal is gone by the time the Scout
  looks (§7.2 false negatives);
* **ambiguous** signals (a Compute-owned host failure still shows up in
  PhyNet's device-reboot dataset);
* **cluster-only** incidents that can collide with concurrent PhyNet
  problems (§7.2 false positives).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datacenter.components import Component, ComponentKind
from ..datacenter.topology import Topology
from ..incidents.incident import Severity
from ..ml.base import as_rng
from ..monitoring.base import FailureEffect
from . import teams as T

__all__ = ["EffectTemplate", "Scenario", "ScenarioInstance", "default_scenarios"]

_HOUR = 3600.0


@dataclass(frozen=True)
class EffectTemplate:
    """A distortion recipe, resolved against concrete components.

    ``target`` selects which components receive the effect:
    ``primary`` (the failing device), ``rack_servers`` (servers under a
    failing ToR), ``cluster_switches`` / ``cluster_servers`` (everything
    of that kind in the affected cluster).
    """

    dataset: str
    target: str
    mode: str
    magnitude: float = 0.0
    event_type: str | None = None
    rate: float = 0.0
    lead: float = 0.5 * _HOUR     # effect starts this long before creation
    lag: float = 1.0 * _HOUR      # ... and persists this long after

    def __post_init__(self) -> None:
        if self.target not in (
            "primary",
            "rack_servers",
            "cluster_switches",
            "cluster_servers",
        ):
            raise ValueError(f"unknown effect target: {self.target!r}")


@dataclass(frozen=True)
class ScenarioInstance:
    """A scenario bound to concrete components and a timestamp."""

    scenario: "Scenario"
    created_at: float
    primary: tuple[Component, ...]
    cluster: Component
    mentioned: tuple[str, ...]
    effects: tuple[FailureEffect, ...]
    severity: Severity
    transient: bool


@dataclass(frozen=True)
class Scenario:
    """One root-cause class."""

    name: str
    responsible: str
    symptom: str
    weight: float
    primary_kind: ComponentKind        # kind of the failing device
    n_primary: int = 1
    effects: tuple[EffectTemplate, ...] = ()
    # What the incident text names: any of "primary", "affected_vms",
    # "affected_servers", "cluster".
    mentions: tuple[str, ...] = ("primary", "cluster")
    # Probability the incident is a CRI (vs. watchdog-created).
    cri_prob: float = 0.1
    # Which team's watchdog usually fires (defaults to the symptom
    # owner); "responsible" means the responsible team's own monitor.
    detected_by: str = "responsible"
    severity_probs: tuple[tuple[Severity, float], ...] = (
        (Severity.LOW, 0.5),
        (Severity.MEDIUM, 0.4),
        (Severity.HIGH, 0.1),
    )
    transient_prob: float = 0.0
    # Jitter applied to effect magnitudes/rates at instantiation.
    magnitude_jitter: tuple[float, float] = (0.7, 1.4)
    # The symptom another team's watchdog *observes* when it (not the
    # responsible team) detects this failure — e.g. a ToR reboot
    # surfaces as virtual-disk failures to the storage team's monitors
    # (the paper's §7.5 case study).  Defaults to ``symptom``.
    observed_symptom: str = ""
    # Day (since the simulation epoch) this failure mode first exists.
    # Non-zero models the paper's §7.3 episode: "in October-November a
    # new type of incident kept recurring which the model initially
    # consistently mis-classified" — the workload is non-stationary.
    available_from_day: float = 0.0
    # Diagnostic phrasing the responsible team's own watchdog includes
    # in the incident text; other teams' watchdogs only describe the
    # symptom they observed (§7: "the text of the incident often
    # describes the symptoms observed but does not reflect the actual
    # state of the network's components").
    detail: str = ""

    def _pick_primary(
        self,
        topology: Topology,
        rng: np.random.Generator,
        cluster: Component | None = None,
    ) -> tuple[Component, ...]:
        if cluster is not None and self.primary_kind is not ComponentKind.CLUSTER:
            pool = topology.members(cluster.name, self.primary_kind)
        else:
            pool = topology.components(self.primary_kind)
            if cluster is not None:
                pool = [c for c in pool if c.name == cluster.name] or pool
        if not pool:
            pool = topology.components(self.primary_kind)
        if not pool:
            raise ValueError(f"topology has no {self.primary_kind} components")
        count = min(self.n_primary, len(pool))
        idx = rng.choice(len(pool), size=count, replace=False)
        return tuple(pool[int(i)] for i in idx)

    def _resolve_targets(
        self, target: str, primary: tuple[Component, ...], topology: Topology
    ) -> list[Component]:
        cluster = _cluster_of(primary[0], topology)
        if target == "primary":
            return list(primary)
        if target == "rack_servers":
            servers: list[Component] = []
            for device in primary:
                if device.kind is ComponentKind.SWITCH:
                    # Servers that depend on this ToR.
                    for server in topology.members(
                        cluster.name, ComponentKind.SERVER
                    ):
                        deps = topology.expand_dependencies(server.name)
                        if device in deps:
                            servers.append(server)
                elif device.kind is ComponentKind.SERVER:
                    servers.append(device)
            return servers or list(primary)
        if target == "cluster_switches":
            return topology.members(cluster.name, ComponentKind.SWITCH)
        if target == "cluster_servers":
            return topology.members(cluster.name, ComponentKind.SERVER)
        raise AssertionError(target)

    def _mentioned_names(
        self,
        primary: tuple[Component, ...],
        topology: Topology,
        rng: np.random.Generator,
    ) -> list[str]:
        cluster = _cluster_of(primary[0], topology)
        names: list[str] = []
        for what in self.mentions:
            if what == "primary":
                names.extend(c.name for c in primary)
            elif what == "cluster":
                names.append(cluster.name)
            elif what == "affected_servers":
                servers = self._resolve_targets("rack_servers", primary, topology)
                take = min(len(servers), 2)
                names.extend(s.name for s in servers[:take])
            elif what == "affected_vms":
                servers = self._resolve_targets("rack_servers", primary, topology)
                vms: list[Component] = []
                for server in servers:
                    vms.extend(topology.members(server.name, ComponentKind.VM))
                if vms:
                    take = min(len(vms), 2)
                    idx = rng.choice(len(vms), size=take, replace=False)
                    names.extend(vms[int(i)].name for i in idx)
            else:
                raise ValueError(f"unknown mention kind: {what!r}")
        # Preserve order, drop duplicates.
        seen: set[str] = set()
        unique = []
        for name in names:
            if name not in seen:
                seen.add(name)
                unique.append(name)
        return unique

    def instantiate(
        self,
        topology: Topology,
        created_at: float,
        rng: int | np.random.Generator | None = None,
        cluster: Component | None = None,
    ) -> ScenarioInstance:
        """Bind this scenario to concrete components at ``created_at``.

        ``cluster`` pins the blast radius — used to create simultaneous
        incidents with overlapping components (§7.2's false-positive
        case).
        """
        rng = as_rng(rng)
        primary = self._pick_primary(topology, rng, cluster=cluster)
        cluster = _cluster_of(primary[0], topology)
        transient = bool(rng.random() < self.transient_prob)
        effects: list[FailureEffect] = []
        if not transient:
            lo, hi = self.magnitude_jitter
            for template in self.effects:
                jitter = float(rng.uniform(lo, hi))
                for component in self._resolve_targets(
                    template.target, primary, topology
                ):
                    effects.append(
                        FailureEffect(
                            dataset=template.dataset,
                            component=component.name,
                            start=created_at - template.lead,
                            end=created_at + template.lag,
                            mode=template.mode,
                            magnitude=template.magnitude * jitter,
                            event_type=template.event_type,
                            rate=template.rate * jitter,
                        )
                    )
        severities, probs = zip(*self.severity_probs)
        severity = severities[
            int(rng.choice(len(severities), p=np.array(probs) / sum(probs)))
        ]
        return ScenarioInstance(
            scenario=self,
            created_at=created_at,
            primary=primary,
            cluster=cluster,
            mentioned=tuple(self._mentioned_names(primary, topology, rng)),
            effects=tuple(effects),
            severity=severity,
            transient=transient,
        )


def _cluster_of(component: Component, topology: Topology) -> Component:
    if component.kind is ComponentKind.CLUSTER:
        return component
    cluster = topology.container(component.name, ComponentKind.CLUSTER)
    if cluster is None:
        # DC-level devices (spines) report their DC as the blast radius.
        dc = topology.container(component.name, ComponentKind.DC)
        if dc is None:
            raise ValueError(f"{component.name} has no cluster or DC")
        clusters = topology.members(dc.name, ComponentKind.CLUSTER)
        return clusters[0]
    return cluster


def default_scenarios() -> list[Scenario]:
    """The scenario library used by every experiment."""
    return [
        # ---- PhyNet-caused ------------------------------------------------
        Scenario(
            name="tor_reboot",
            responsible=T.PHYNET,
            detail="Fabric diagnostics: ToR switch reload detected, interface flaps on rack uplinks.",
            observed_symptom="storage_failure",
            symptom="connectivity_loss",
            weight=7.0,
            primary_kind=ComponentKind.SWITCH,
            effects=(
                EffectTemplate(
                    "device_reboots", "primary", "burst",
                    event_type="reboot", rate=4.0,
                ),
                EffectTemplate("ping_statistics", "rack_servers", "shift", 1.2),
                EffectTemplate(
                    "canaries", "rack_servers", "burst",
                    event_type="canary_unreachable", rate=6.0,
                ),
                EffectTemplate("link_loss_status", "primary", "shift", 8e-4),
            ),
            mentions=("affected_vms", "affected_servers", "cluster"),
            detected_by=T.STORAGE,
            cri_prob=0.1,
        ),
        Scenario(
            name="fcs_corruption",
            responsible=T.PHYNET,
            detail="NetBouncer reports FCS corruption above threshold on fabric link.",
            symptom="throughput",
            weight=4.0,
            primary_kind=ComponentKind.SWITCH,
            effects=(
                EffectTemplate(
                    "fcs_corruption", "primary", "burst",
                    event_type="fcs_error", rate=5.0,
                ),
                EffectTemplate("link_drop_statistics", "primary", "shift", 1e-3),
                EffectTemplate("interface_counters", "primary", "shift", 120.0),
            ),
            mentions=("primary", "cluster"),
            detected_by="responsible",
        ),
        Scenario(
            name="switch_silent_drops",
            responsible=T.PHYNET,
            detail="Fabric diagnostics: silent packet drop anomaly isolated to a switch.",
            observed_symptom="db_errors",
            symptom="connectivity_loss",
            weight=5.0,
            primary_kind=ComponentKind.SWITCH,
            effects=(
                EffectTemplate("switch_drop_statistics", "primary", "shift", 1.5e-3),
                EffectTemplate("interface_counters", "primary", "shift", 150.0),
                EffectTemplate("ping_statistics", "rack_servers", "shift", 0.8),
            ),
            mentions=("affected_servers", "cluster"),
            detected_by=T.DATABASE,
        ),
        Scenario(
            name="pfc_storm",
            responsible=T.PHYNET,
            detail="PFC pause storm suspected on RDMA-enabled fabric switches.",
            symptom="throughput",
            weight=3.0,
            primary_kind=ComponentKind.SWITCH,
            n_primary=2,
            effects=(
                EffectTemplate("pfc_counters", "primary", "shift", 400.0),
                EffectTemplate("pfc_counters", "cluster_switches", "shift", 120.0),
                EffectTemplate("ping_statistics", "cluster_servers", "shift", 0.5),
            ),
            mentions=("cluster",),
            detected_by="responsible",
        ),
        Scenario(
            name="switch_overheat",
            responsible=T.PHYNET,
            detail="Switch ASIC temperature exceeds thermal envelope, parity errors logged.",
            symptom="hardware",
            weight=2.0,
            primary_kind=ComponentKind.SWITCH,
            effects=(
                EffectTemplate("temperature", "primary", "shift", 25.0),
                EffectTemplate(
                    "snmp_syslogs", "primary", "burst",
                    event_type="parity_error", rate=4.0,
                ),
            ),
            mentions=("primary",),
            detected_by="responsible",
        ),
        Scenario(
            name="agg_congestion",
            responsible=T.PHYNET,
            detail="Aggregation layer congestion: interface queues saturated on agg switches.",
            observed_symptom="latency",
            symptom="latency",
            weight=3.5,
            primary_kind=ComponentKind.SWITCH,
            effects=(
                EffectTemplate("ping_statistics", "cluster_servers", "shift", 0.9),
                EffectTemplate("interface_counters", "primary", "shift", 90.0),
                EffectTemplate("pfc_counters", "primary", "shift", 150.0),
            ),
            mentions=("cluster",),
            detected_by=T.CACHE,
            cri_prob=0.15,
        ),
        Scenario(
            name="tor_dhcp_misconfig",
            responsible=T.PHYNET,
            detail="DHCP relay misconfiguration suspected on ToR configuration push.",
            observed_symptom="vm_crash",
            symptom="connectivity_loss",
            weight=1.0,
            primary_kind=ComponentKind.SWITCH,
            # No monitoring dataset captures DHCP (§7.2): zero effects.
            effects=(),
            mentions=("primary", "affected_servers"),
            detected_by=T.COMPUTE,
        ),
        Scenario(
            name="transient_latency_spike",
            responsible=T.PHYNET,
            detail="Intra-DC latency spike auto-resolved, monitoring for recurrence.",
            observed_symptom="latency",
            symptom="latency",
            weight=0.8,
            primary_kind=ComponentKind.SWITCH,
            effects=(
                EffectTemplate("ping_statistics", "rack_servers", "shift", 1.0),
            ),
            mentions=("affected_servers", "cluster"),
            detected_by=T.WAN,
            transient_prob=0.7,
        ),
        # ---- not PhyNet ----------------------------------------------------
        Scenario(
            name="storage_stamp_failure",
            responsible=T.STORAGE,
            detail="Storage stamp diagnostics: disk IO error rate rising on extent nodes.",
            symptom="storage_failure",
            weight=11.0,
            primary_kind=ComponentKind.SERVER,
            n_primary=3,
            effects=(
                EffectTemplate(
                    "disk_io_errors", "primary", "burst",
                    event_type="io_error", rate=10.0,
                ),
                EffectTemplate("storage_latency", "primary", "shift", 6.0),
            ),
            mentions=("affected_vms", "cluster"),
            detected_by="responsible",
            cri_prob=0.2,
        ),
        Scenario(
            name="slb_update_regression",
            responsible=T.SLB,
            detail="SLB rollout health: VIP probe failures after MUX update deployment.",
            symptom="lb_failure",
            weight=7.0,
            primary_kind=ComponentKind.CLUSTER,
            effects=(
                EffectTemplate(
                    "vip_probe_failures", "primary", "burst",
                    event_type="probe_failure", rate=8.0,
                ),
            ),
            mentions=("cluster",),
            detected_by=T.SLB,
            cri_prob=0.25,
        ),
        Scenario(
            name="hostnet_vfp_bug",
            responsible=T.HOSTNET,
            detail="Host networking: virtual filtering platform agent fault on host partition.",
            observed_symptom="vm_crash",
            symptom="connectivity_loss",
            weight=6.0,
            primary_kind=ComponentKind.SERVER,
            n_primary=2,
            # Host-level fault: nothing in PhyNet's monitoring plane
            # reflects it (the ambiguity lives in the text alone).
            effects=(),
            mentions=("affected_vms", "primary", "cluster"),
            detected_by=T.COMPUTE,
            cri_prob=0.2,
        ),
        Scenario(
            name="dns_zone_outage",
            responsible=T.DNS,
            detail="Authoritative DNS zone transfer failed, SOA serial mismatch.",
            symptom="dns_failure",
            weight=4.0,
            primary_kind=ComponentKind.CLUSTER,
            effects=(
                EffectTemplate(
                    "dns_query_timeouts", "primary", "burst",
                    event_type="query_timeout", rate=10.0,
                ),
            ),
            mentions=("cluster",),
            detected_by="responsible",
            cri_prob=0.3,
        ),
        Scenario(
            name="db_replica_overload",
            responsible=T.DATABASE,
            detail="Database telemetry: replica lag and query queue growth beyond limits.",
            symptom="db_errors",
            weight=6.0,
            primary_kind=ComponentKind.SERVER,
            n_primary=2,
            effects=(
                EffectTemplate("db_query_latency", "primary", "shift", 15.0),
            ),
            mentions=("primary", "cluster"),
            detected_by="responsible",
            cri_prob=0.15,
        ),
        Scenario(
            name="compute_host_failure",
            responsible=T.COMPUTE,
            detail="Compute fabric controller: host agent heartbeat lost, node marked unhealthy.",
            symptom="vm_crash",
            weight=6.0,
            primary_kind=ComponentKind.SERVER,
            effects=(
                # Ambiguous: PhyNet's device_reboots dataset records host
                # reboots even when Compute owns the root cause.
                EffectTemplate(
                    "device_reboots", "primary", "burst",
                    event_type="reboot", rate=1.2,
                ),
            ),
            mentions=("affected_vms", "primary", "cluster"),
            detected_by="responsible",
        ),
        Scenario(
            name="customer_misconfig",
            responsible=T.CUSTOMER,
            symptom="connectivity_loss",
            weight=5.0,
            primary_kind=ComponentKind.VM,
            n_primary=1,
            effects=(),
            mentions=("primary", "cluster"),
            detected_by="customer",
            cri_prob=1.0,
        ),
        Scenario(
            name="auth_token_outage",
            responsible=T.AUTH,
            detail="Identity platform: token signing service errors, STS latency elevated.",
            symptom="auth_failure",
            weight=3.0,
            primary_kind=ComponentKind.CLUSTER,
            effects=(),
            mentions=("cluster",),
            detected_by="responsible",
            cri_prob=0.3,
        ),
        # ---- emerging failure mode (appears on day 150) -------------------
        # A firmware regression reboots whole racks of servers at once.
        # PhyNet owns the fix (the NIC/agent firmware push went through
        # their pipeline), but the signature — server reboots + canary
        # failures with *healthy switches* — resembles the Compute
        # team's host failures, so a model trained before day 150
        # consistently mis-classifies it until retraining catches up.
        Scenario(
            name="firmware_reboot_storm",
            responsible=T.PHYNET,
            symptom="vm_crash",
            observed_symptom="vm_crash",
            detail=(
                "Fleet firmware push correlated with synchronized host "
                "reboots; NIC agent suspected."
            ),
            weight=5.0,
            primary_kind=ComponentKind.SERVER,
            n_primary=4,
            effects=(
                EffectTemplate(
                    "device_reboots", "primary", "burst",
                    event_type="reboot", rate=6.0,
                ),
                EffectTemplate(
                    "canaries", "primary", "burst",
                    event_type="canary_unreachable", rate=8.0,
                ),
            ),
            mentions=("primary", "affected_vms", "cluster"),
            detected_by=T.COMPUTE,
            available_from_day=150.0,
        ),
        Scenario(
            name="firewall_policy_push",
            responsible=T.FIREWALL,
            detail="Firewall policy deployment rejected flows after ruleset push.",
            symptom="connectivity_loss",
            weight=3.0,
            primary_kind=ComponentKind.CLUSTER,
            effects=(),
            mentions=("cluster",),
            detected_by=T.FIREWALL,
            cri_prob=0.2,
        ),
    ]
