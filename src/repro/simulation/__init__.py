"""Cloud-simulation substrate: teams, scenarios, workload, legacy routing."""

from .legacy_router import RoutedOutcome, RoutingModel
from .mle_master import MleScoutMaster, ScoutProfile, simulate_mle_gain
from .nlp_baseline import NlpRouter, Recommendation
from .scenarios import EffectTemplate, Scenario, ScenarioInstance, default_scenarios
from .scout_master import (
    AbstractScout,
    ScoutAnswer,
    ScoutMaster,
    simulate_master_gain,
)
from .storage_scout import StorageRuleScout
from .teams import Team, TeamRegistry, default_teams
from .workload import CloudSimulation, SimulationConfig, storage_dataset

__all__ = [
    "AbstractScout",
    "MleScoutMaster",
    "ScoutProfile",
    "simulate_mle_gain",
    "CloudSimulation",
    "EffectTemplate",
    "NlpRouter",
    "Recommendation",
    "RoutedOutcome",
    "RoutingModel",
    "Scenario",
    "ScenarioInstance",
    "ScoutAnswer",
    "ScoutMaster",
    "SimulationConfig",
    "StorageRuleScout",
    "Team",
    "TeamRegistry",
    "default_scenarios",
    "default_teams",
    "simulate_master_gain",
    "storage_dataset",
]
