"""The end-to-end cloud simulation.

``CloudSimulation`` wires together the topology, the monitoring plane,
the team universe, the failure-scenario library, the legacy routing
process, and the incident text generator.  ``generate()`` produces the
synthetic equivalent of the paper's nine-month Azure dataset: an
:class:`~repro.incidents.store.IncidentStore` whose incidents have
monitoring signatures injected into the simulation's
:class:`~repro.monitoring.store.MonitoringStore`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datacenter.components import Component
from ..datacenter.topology import Topology, TopologySpec, build_topology
from ..incidents.incident import Incident, IncidentSource
from ..incidents.routing import RoutingTrace
from ..incidents.store import IncidentStore
from ..incidents.text_gen import IncidentTextGenerator
from ..ml.base import as_rng
from ..monitoring.base import DatasetSchema
from ..monitoring.datasets import phynet_datasets
from ..monitoring.store import MonitoringStore
from ..monitoring.team_datasets import team_datasets
from .legacy_router import RoutingModel
from .scenarios import Scenario, ScenarioInstance, default_scenarios
from .teams import TeamRegistry, default_teams

__all__ = ["CloudSimulation", "SimulationConfig", "storage_dataset"]

_DAY = 86400.0


def storage_dataset() -> DatasetSchema:
    """The Storage team's IO-error dataset (Appendix B's rule Scout)."""
    return next(
        schema for schema in team_datasets() if schema.name == "disk_io_errors"
    )


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs for the synthetic nine-month dataset."""

    seed: int = 0
    duration_days: float = 270.0
    # Probability an incident is a *second*, concurrent incident pinned
    # to the previous incident's cluster (§7.2 false-positive case).
    simultaneous_prob: float = 0.04
    # Probability the recorded owner differs from the true resolver
    # (§8: "Not all incidents have the right label").
    label_noise: float = 0.0
    # Probability a CRI omits component names from its text (§7.4).
    cri_omit_components_prob: float = 0.35


class CloudSimulation:
    """A synthetic cloud that emits incidents with monitoring signatures."""

    def __init__(
        self,
        config: SimulationConfig | None = None,
        topology_spec: TopologySpec | None = None,
        scenarios: list[Scenario] | None = None,
        registry: TeamRegistry | None = None,
        routing_model: RoutingModel | None = None,
    ) -> None:
        self.config = config or SimulationConfig()
        self.topology: Topology = build_topology(topology_spec)
        self.registry = registry or default_teams()
        self.scenarios = scenarios or default_scenarios()
        self.routing = routing_model or RoutingModel(self.registry)
        self.store = MonitoringStore(
            phynet_datasets() + team_datasets(), seed=self.config.seed
        )
        self._rng = as_rng(self.config.seed)
        self._text = IncidentTextGenerator(rng=self._rng)
        self._next_id = 0
        self._validate_scenarios()

    def _validate_scenarios(self) -> None:
        if not self.scenarios:
            raise ValueError("need at least one scenario")
        dataset_names = set(self.store.dataset_names)
        for scenario in self.scenarios:
            if scenario.responsible not in self.registry:
                raise ValueError(
                    f"{scenario.name}: unknown team {scenario.responsible!r}"
                )
            for template in scenario.effects:
                if template.dataset not in dataset_names:
                    raise ValueError(
                        f"{scenario.name}: unknown dataset {template.dataset!r}"
                    )

    # -- generation -------------------------------------------------------

    def _pick_scenario(self, created_at: float = float("inf")) -> Scenario:
        """Weighted scenario choice among those that exist at this time.

        Emerging failure modes (non-zero ``available_from_day``) only
        become eligible once the timeline reaches them.
        """
        day = created_at / _DAY
        eligible = [s for s in self.scenarios if s.available_from_day <= day]
        if not eligible:
            eligible = list(self.scenarios)
        weights = np.array([s.weight for s in eligible])
        weights /= weights.sum()
        return eligible[int(self._rng.choice(len(eligible), p=weights))]

    def generate_incident(
        self,
        created_at: float,
        scenario: Scenario | None = None,
        cluster: Component | None = None,
    ) -> tuple[Incident, ScenarioInstance, "RoutingTrace"]:
        """Create one incident (and inject its monitoring effects)."""
        scenario = scenario or self._pick_scenario(created_at)
        instance = scenario.instantiate(
            self.topology, created_at, rng=self._rng, cluster=cluster
        )
        for effect in instance.effects:
            self.store.inject(effect)

        incident_id = self._next_id
        self._next_id += 1
        outcome = self.routing.route(instance, incident_id, rng=self._rng)

        omit = (
            outcome.source is IncidentSource.CUSTOMER
            and self._rng.random() < self.config.cri_omit_components_prob
        )
        monitor = (
            f"{outcome.source_team}-watchdog" if outcome.source_team else None
        )
        # Another team's watchdog describes what *it* observed, not the
        # root cause (§7.5's virtual-disk example: a ToR failure surfaces
        # as storage errors to the storage team's monitors).
        if (
            outcome.source is IncidentSource.OTHER_MONITOR
            and scenario.observed_symptom
        ):
            rendered_symptom = scenario.observed_symptom
        else:
            rendered_symptom = scenario.symptom
        title, body = self._text.render(
            symptom=rendered_symptom,
            component_names=list(instance.mentioned),
            from_monitor=monitor,
            noise_sentences=int(self._rng.integers(1, 4)),
            omit_components=omit,
            # Only the responsible team's own watchdog knows the
            # diagnostic detail; other detectors see just the symptom.
            detail=scenario.detail
            if outcome.source is IncidentSource.OWN_MONITOR
            else None,
        )

        responsible = scenario.responsible
        recorded = responsible
        if self._rng.random() < self.config.label_noise:
            wrong_pool = [
                hop.team
                for hop in outcome.trace.hops
                if hop.team != responsible
            ]
            if wrong_pool:
                recorded = wrong_pool[int(self._rng.integers(len(wrong_pool)))]

        incident = Incident(
            incident_id=incident_id,
            created_at=created_at,
            title=title,
            body=body,
            severity=instance.severity,
            source=outcome.source,
            source_team=outcome.source_team,
            responsible_team=responsible,
            recorded_team=recorded,
            scenario=scenario.name,
            annotations={
                "cluster": instance.cluster.name,
                "transient": str(instance.transient),
                "omitted_components": str(omit),
                # What the text *would* have named: the information the
                # first investigating teams discover and append to a CRI
                # (§7.4's n-team experiment re-reveals it).
                "mentioned": ",".join(instance.mentioned),
            },
        )
        return incident, instance, outcome.trace

    def generate(self, n_incidents: int, start_day: float = 0.0) -> IncidentStore:
        """Generate the full synthetic incident dataset."""
        if n_incidents < 1:
            raise ValueError("n_incidents must be >= 1")
        times = np.sort(
            self._rng.uniform(
                start_day * _DAY,
                (start_day + self.config.duration_days) * _DAY,
                size=n_incidents,
            )
        )
        incidents = IncidentStore()
        previous_cluster: Component | None = None
        for created_at in times:
            cluster = None
            if (
                previous_cluster is not None
                and self._rng.random() < self.config.simultaneous_prob
            ):
                cluster = previous_cluster
            incident, instance, trace = self.generate_incident(
                float(created_at), cluster=cluster
            )
            incidents.add(incident, trace)
            previous_cluster = instance.cluster
        return incidents
