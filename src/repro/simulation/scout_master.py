"""The Scout Master (Appendices C & D).

Coordinates a set of per-team Scouts into a global routing decision.
The strawman algorithm of Appendix C:

1. exactly one Scout says "yes" with high confidence → route there;
2. several say "yes" → prefer the *dependency* (if one yes-team's
   components depend on another's, send it to the latter), otherwise
   the most confident;
3. none say "yes" → fall back to the legacy process.

Appendix D evaluates fleets of *abstract* Scouts — each modeled by an
accuracy ``P`` and confidence intervals parameterized by ``β`` — over
real routing traces; :class:`AbstractScout` and
:func:`simulate_master_gain` implement that trace-driven simulation for
Figures 15 and 16.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..incidents.store import IncidentStore
from ..ml.base import as_rng
from .teams import TeamRegistry

__all__ = [
    "ScoutAnswer",
    "ScoutMaster",
    "AbstractScout",
    "simulate_master_gain",
]


@dataclass(frozen=True)
class ScoutAnswer:
    """One Scout's reply to a Scout Master query."""

    team: str
    responsible: bool | None
    confidence: float


class ScoutMaster:
    """The Appendix C strawman composition of real Scout answers."""

    def __init__(
        self,
        registry: TeamRegistry,
        confidence_floor: float = 0.5,
    ) -> None:
        self.registry = registry
        self.confidence_floor = confidence_floor

    def route(self, answers: list[ScoutAnswer]) -> str | None:
        """The chosen team, or None to fall back to legacy routing."""
        yes = [
            a
            for a in answers
            if a.responsible is True and a.confidence >= self.confidence_floor
        ]
        if not yes:
            return None
        if len(yes) == 1:
            return yes[0].team
        # Several teams claim the incident: prefer the one the others
        # depend on (the deeper dependency is the likelier root cause).
        names = {a.team for a in yes}
        for answer in yes:
            others = names - {answer.team}
            if others and all(
                answer.team in self.registry.dependencies(other)
                for other in others
            ):
                return answer.team
        return max(yes, key=lambda a: a.confidence).team


@dataclass
class AbstractScout:
    """Appendix D's parameterized Scout model.

    With probability ``accuracy`` the Scout answers correctly.  Correct
    answers draw confidence from ``(0.8 - beta, 0.8)``; incorrect ones
    from ``(0.5, 0.5 + beta)`` — both uniform, exactly as Appendix D
    specifies.
    """

    team: str
    accuracy: float = 1.0
    beta: float = 0.0

    def answer(
        self, responsible_team: str, rng: np.random.Generator
    ) -> ScoutAnswer:
        truth = responsible_team == self.team
        correct = rng.random() < self.accuracy
        verdict = truth if correct else not truth
        if self.accuracy >= 1.0:
            confidence = 1.0
        elif correct:
            confidence = float(rng.uniform(0.8 - self.beta, 0.8))
        else:
            confidence = float(rng.uniform(0.5, 0.5 + self.beta))
        return ScoutAnswer(self.team, verdict, confidence)


def simulate_master_gain(
    incidents: IncidentStore,
    scouts: list[AbstractScout],
    registry: TeamRegistry,
    rng: int | np.random.Generator | None = 0,
    confidence_floor: float = 0.5,
) -> np.ndarray:
    """Per-incident fraction of investigation time saved by a fleet.

    Replays baseline routing traces: when the Scout Master picks the
    truly responsible team, all earlier wrong-team hops are skipped;
    when it picks a wrong team, that team's (sampled) stint is added
    before the baseline routing resumes; when it abstains, the baseline
    stands.  Only mis-routed incidents are scored (Figure 15/16's
    population).
    """
    rng = as_rng(rng)
    master = ScoutMaster(registry, confidence_floor=confidence_floor)
    fractions = []
    for incident in incidents:
        trace = incidents.trace(incident.incident_id)
        if trace is None or not trace.mis_routed:
            continue
        total = trace.total_time
        if total <= 0:
            continue
        answers = [
            scout.answer(incident.responsible_team, rng) for scout in scouts
        ]
        choice = master.route(answers)
        if choice is None:
            fractions.append(0.0)
            continue
        if choice == incident.responsible_team:
            saved = trace.time_before(choice)
            fractions.append(saved / total)
        else:
            # Wrong team engaged first: extra stint comparable to the
            # trace's average wrong-team hop.
            wrong_times = [
                hop.time_spent
                for hop in trace.hops
                if hop.team != trace.resolved_by
            ]
            penalty = float(np.mean(wrong_times)) if wrong_times else 0.0
            fractions.append(-penalty / total)
    return np.array(fractions)
