"""The team universe of the synthetic cloud.

Teams "broadly refer to both internal teams in the cloud and external
organizations" (§2).  The dependency graph drives mis-routing: "the most
common cause of mis-routing is when a team's component is one of the
dependencies of the impacted system and thus a legitimate suspect, but
not the cause" (§3.2).  Nearly every service depends on PhyNet, which is
why PhyNet receives 1-in-10 mis-routed incidents.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Team",
    "TeamRegistry",
    "default_teams",
    "PHYNET",
    "STORAGE",
    "SLB",
    "HOSTNET",
    "DNS",
    "DATABASE",
    "COMPUTE",
    "FIREWALL",
    "WAN",
    "CACHE",
    "AUTH",
    "CUSTOMER",
]

PHYNET = "PhyNet"
STORAGE = "Storage"
SLB = "SLB"
HOSTNET = "HostNet"
DNS = "DNS"
DATABASE = "Database"
COMPUTE = "Compute"
FIREWALL = "Firewall"
WAN = "WAN"
CACHE = "Cache"
AUTH = "Auth"
# "Customer" models external causes (customer misconfiguration, on-prem
# firewalls, ISP issues) — cases where no internal team is responsible.
CUSTOMER = "Customer"


@dataclass(frozen=True)
class Team:
    """One engineering team (or external organization)."""

    name: str
    depends_on: tuple[str, ...] = ()
    internal: bool = True
    # Symptom tags this team's watchdogs know how to observe; used by the
    # legacy routing process to guess a first suspect for CRIs.
    symptoms: tuple[str, ...] = ()


@dataclass
class TeamRegistry:
    """Lookup plus dependency queries over the team universe."""

    teams: dict[str, Team] = field(default_factory=dict)

    def add(self, team: Team) -> None:
        if team.name in self.teams:
            raise ValueError(f"duplicate team: {team.name}")
        for dep in team.depends_on:
            if dep not in self.teams and dep != team.name:
                # Allow forward references; validated in validate().
                pass
        self.teams[team.name] = team

    def __contains__(self, name: str) -> bool:
        return name in self.teams

    def __getitem__(self, name: str) -> Team:
        return self.teams[name]

    @property
    def names(self) -> list[str]:
        return sorted(self.teams)

    @property
    def internal_names(self) -> list[str]:
        return sorted(name for name, team in self.teams.items() if team.internal)

    def validate(self) -> None:
        for team in self.teams.values():
            for dep in team.depends_on:
                if dep not in self.teams:
                    raise ValueError(
                        f"{team.name} depends on unknown team {dep!r}"
                    )

    def dependencies(self, name: str) -> list[str]:
        return list(self.teams[name].depends_on)

    def dependents(self, name: str) -> list[str]:
        """Teams that depend on ``name`` — its likely blamers."""
        return sorted(
            team.name
            for team in self.teams.values()
            if name in team.depends_on
        )

    def suspects_for_symptom(self, symptom: str) -> list[str]:
        """Teams whose purview plausibly covers a symptom tag."""
        return sorted(
            team.name
            for team in self.teams.values()
            if symptom in team.symptoms
        )


def default_teams() -> TeamRegistry:
    """The 12-team universe used across the reproduction."""
    registry = TeamRegistry()
    registry.add(Team(PHYNET, symptoms=("connectivity_loss", "latency", "throughput", "hardware")))
    registry.add(Team(STORAGE, depends_on=(PHYNET,), symptoms=("storage_failure", "vm_crash")))
    registry.add(Team(SLB, depends_on=(PHYNET,), symptoms=("lb_failure", "connectivity_loss")))
    registry.add(Team(HOSTNET, depends_on=(PHYNET, SLB), symptoms=("connectivity_loss", "vm_crash")))
    registry.add(Team(DNS, depends_on=(PHYNET,), symptoms=("dns_failure",)))
    registry.add(Team(DATABASE, depends_on=(STORAGE, PHYNET), symptoms=("db_errors", "latency")))
    registry.add(Team(COMPUTE, depends_on=(PHYNET, STORAGE, HOSTNET), symptoms=("vm_crash", "hardware")))
    registry.add(Team(FIREWALL, depends_on=(PHYNET,), symptoms=("connectivity_loss", "auth_failure")))
    registry.add(Team(WAN, depends_on=(PHYNET,), symptoms=("connectivity_loss", "latency")))
    registry.add(Team(CACHE, depends_on=(PHYNET, COMPUTE), symptoms=("latency",)))
    registry.add(Team(AUTH, depends_on=(PHYNET, DATABASE), symptoms=("auth_failure",)))
    registry.add(
        Team(
            CUSTOMER,
            internal=False,
            symptoms=("connectivity_loss", "auth_failure", "storage_failure"),
        )
    )
    registry.validate()
    return registry
