"""MLE-based Scout Master (Appendix C's "more sophisticated" variant).

The strawman composition routes on raw yes/no answers.  Appendix C
sketches the upgrade: "More sophisticated algorithms can predict the
team 'most likely' to be responsible (the MLE estimate [54]) for an
incident given the historic accuracy of each Scout and its output
confidence score."

For team *t* with per-Scout answers *aᵢ*, the posterior over "t is
responsible" combines each Scout's answer with its historically
measured true/false-positive rates, treating Scouts as conditionally
independent:

    L(t) = P(answers | t responsible) · P(t)
         = Πᵢ P(aᵢ | responsible=𝟙[i = t]) · P(t)

A Scout's answer likelihood interpolates between its historic hit rates
using the reported confidence, so a low-confidence "yes" moves the
posterior less than a high-confidence one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ml.base import as_rng
from ..incidents.store import IncidentStore
from .scout_master import AbstractScout, ScoutAnswer
from .teams import TeamRegistry

__all__ = ["ScoutProfile", "MleScoutMaster", "simulate_mle_gain"]


@dataclass
class ScoutProfile:
    """Historic accuracy of one Scout, as the MLE master tracks it.

    Laplace-smoothed counts of (answer, truth) outcomes.
    """

    team: str
    tp: float = 1.0  # said yes, was responsible
    fn: float = 1.0  # said no, was responsible
    fp: float = 1.0  # said yes, was not responsible
    tn: float = 1.0  # said no, was not responsible

    @property
    def true_positive_rate(self) -> float:
        return self.tp / (self.tp + self.fn)

    @property
    def false_positive_rate(self) -> float:
        return self.fp / (self.fp + self.tn)

    def update(self, said_yes: bool, was_responsible: bool) -> None:
        if was_responsible:
            if said_yes:
                self.tp += 1.0
            else:
                self.fn += 1.0
        elif said_yes:
            self.fp += 1.0
        else:
            self.tn += 1.0

    def answer_likelihood(
        self, answer: ScoutAnswer, team_responsible: bool
    ) -> float:
        """P(this answer | whether the Scout's team is responsible).

        The reported confidence interpolates between the historic rate
        and indifference (0.5): confidence 1 trusts the profile fully,
        confidence 0.5 says the Scout itself is guessing.
        """
        rate = (
            self.true_positive_rate
            if team_responsible
            else self.false_positive_rate
        )
        p_yes_historic = rate
        weight = max(0.0, min(1.0, 2.0 * (answer.confidence - 0.5)))
        p_yes = weight * p_yes_historic + (1.0 - weight) * 0.5
        p_yes = min(max(p_yes, 1e-6), 1.0 - 1e-6)
        return p_yes if answer.responsible else 1.0 - p_yes


class MleScoutMaster:
    """Maximum-likelihood composition of Scout answers.

    Tracks each Scout's historic accuracy online (or accepts priors) and
    routes to the argmax-posterior team when the posterior clears
    ``decision_threshold``; otherwise falls back to legacy routing.
    """

    def __init__(
        self,
        registry: TeamRegistry,
        priors: dict[str, float] | None = None,
        decision_threshold: float = 0.3,
    ) -> None:
        self.registry = registry
        self.decision_threshold = decision_threshold
        self._profiles: dict[str, ScoutProfile] = {}
        self._priors = dict(priors or {})

    def profile(self, team: str) -> ScoutProfile:
        if team not in self._profiles:
            self._profiles[team] = ScoutProfile(team)
        return self._profiles[team]

    def _prior(self, team: str) -> float:
        return self._priors.get(team, 1.0)

    def posterior(self, answers: list[ScoutAnswer]) -> dict[str, float]:
        """P(team responsible | answers) over the answering teams."""
        teams = [answer.team for answer in answers]
        scores = {}
        for candidate in teams:
            likelihood = self._prior(candidate)
            for answer in answers:
                likelihood *= self.profile(answer.team).answer_likelihood(
                    answer, team_responsible=(answer.team == candidate)
                )
            scores[candidate] = likelihood
        # "None of the above": every Scout answers about a non-
        # responsible team.
        none_likelihood = self._prior("__none__") if "__none__" in self._priors else 1.0
        for answer in answers:
            none_likelihood *= self.profile(answer.team).answer_likelihood(
                answer, team_responsible=False
            )
        scores["__none__"] = none_likelihood
        total = sum(scores.values())
        if total <= 0:
            return {team: 0.0 for team in scores}
        return {team: score / total for team, score in scores.items()}

    def route(self, answers: list[ScoutAnswer]) -> str | None:
        """The MLE team, or None (fall back) when nothing is likely."""
        if not answers:
            return None
        posterior = self.posterior(answers)
        best_team = max(
            (team for team in posterior if team != "__none__"),
            key=lambda team: posterior[team],
        )
        if posterior[best_team] < self.decision_threshold:
            return None
        if posterior["__none__"] > posterior[best_team]:
            return None
        return best_team

    def observe(self, answers: list[ScoutAnswer], responsible: str) -> None:
        """Online profile update after the incident resolves."""
        for answer in answers:
            self.profile(answer.team).update(
                said_yes=bool(answer.responsible),
                was_responsible=(answer.team == responsible),
            )


def simulate_mle_gain(
    incidents: IncidentStore,
    scouts: list[AbstractScout],
    registry: TeamRegistry,
    rng: int | np.random.Generator | None = 0,
    decision_threshold: float = 0.3,
    master: MleScoutMaster | None = None,
) -> np.ndarray:
    """Replay routing traces through the MLE master (cf. Figure 16).

    The master learns each Scout's accuracy online from resolved
    incidents, so early decisions are cautious and later ones exploit
    the measured profiles.  Pass a pre-warmed ``master`` to continue an
    existing profile history (e.g. warm up on one period, evaluate on
    the next).
    """
    rng = as_rng(rng)
    if master is None:
        master = MleScoutMaster(registry, decision_threshold=decision_threshold)
    fractions = []
    for incident in incidents:
        trace = incidents.trace(incident.incident_id)
        if trace is None or not trace.mis_routed:
            continue
        total = trace.total_time
        if total <= 0:
            continue
        answers = [
            scout.answer(incident.responsible_team, rng) for scout in scouts
        ]
        choice = master.route(answers)
        if choice is None:
            fractions.append(0.0)
        elif choice == incident.responsible_team:
            fractions.append(trace.time_before(choice) / total)
        else:
            wrong_times = [
                hop.time_spent
                for hop in trace.hops
                if hop.team != trace.resolved_by
            ]
            penalty = float(np.mean(wrong_times)) if wrong_times else 0.0
            fractions.append(-penalty / total)
        master.observe(answers, incident.responsible_team)
    return np.array(fractions)
