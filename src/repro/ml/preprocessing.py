"""Feature preprocessing: scaling, imputation, normalization.

The Scout framework normalizes time series before computing statistics
(§5.2) and imputes missing features with training-set means when a
monitoring system is itself unavailable at prediction time (§6).
"""

from __future__ import annotations

import warnings

import numpy as np

from .base import Estimator, check_matrix

__all__ = ["StandardScaler", "MinMaxScaler", "MeanImputer", "normalize_series"]


class StandardScaler(Estimator):
    """Zero-mean, unit-variance scaling with constant-column protection."""

    def fit(self, X) -> "StandardScaler":
        X = check_matrix(X)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        # Constant columns carry no information; dividing by 1 keeps them 0.
        std[std == 0.0] = 1.0
        self.scale_ = std
        self._fitted = True
        return self

    def transform(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_matrix(X)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"expected {self.mean_.shape[0]} features, got {X.shape[1]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)


class MinMaxScaler(Estimator):
    """Scale each feature into [0, 1] based on the training range."""

    def fit(self, X) -> "MinMaxScaler":
        X = check_matrix(X)
        self.min_ = X.min(axis=0)
        span = X.max(axis=0) - self.min_
        span[span == 0.0] = 1.0
        self.span_ = span
        self._fitted = True
        return self

    def transform(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_matrix(X)
        return (X - self.min_) / self.span_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)


class MeanImputer(Estimator):
    """Replace NaNs with the per-feature training mean.

    This mirrors Resource Central's behaviour in the deployed Scout:
    "If any of the features are unavailable ... [it] uses the mean of
    that feature in the training set for online predictions" (§6).
    """

    def fit(self, X) -> "MeanImputer":
        X = check_matrix(X)
        with np.errstate(invalid="ignore"), warnings.catch_warnings():
            # All-NaN columns are legitimate (a monitoring system down
            # for the whole training window); they impute to 0 below.
            warnings.simplefilter("ignore", category=RuntimeWarning)
            means = np.nanmean(X, axis=0)
        # A feature that is NaN for every training row imputes to 0.
        self.means_ = np.where(np.isnan(means), 0.0, means)
        self._fitted = True
        return self

    def transform(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_matrix(X).copy()
        nan_rows, nan_cols = np.where(np.isnan(X))
        X[nan_rows, nan_cols] = self.means_[nan_cols]
        return X

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)


def normalize_series(values: np.ndarray) -> np.ndarray:
    """Normalize one time series to zero mean / unit variance.

    Constant series (no variation in the look-back window) normalize to
    all-zeros rather than dividing by zero.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return values
    std = values.std()
    if std == 0.0:
        return np.zeros_like(values)
    return (values - values.mean()) / std
