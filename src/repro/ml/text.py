"""Text vectorization for incident descriptions.

Two consumers:

* the **NLP baseline** (§7, Table 1) — a multi-class classifier over
  TF-IDF features of the raw incident text, mirroring the provider's
  production recommender [31];
* the **model selector** (§5.3) — "we identify important words in the
  incident and their frequency" [58] as meta-features.
"""

from __future__ import annotations

import re
from collections import Counter

import numpy as np

from .base import Estimator

__all__ = ["tokenize", "CountVectorizer", "TfidfVectorizer", "important_words"]

_TOKEN_RE = re.compile(r"[a-z0-9][a-z0-9._\-]*")

# Words so common in any incident that they carry no routing signal.
_STOPWORDS = frozenset(
    """a an and are as at be by for from has have in is it its of on or
    that the this to was were will with we our not no""".split()
)


def tokenize(text: str) -> list[str]:
    """Lowercase, split into identifier-friendly tokens, drop stopwords.

    Machine-generated component names like ``vm-3.c10.dc3`` survive as
    single tokens, which matters for both consumers.
    """
    return [
        token
        for token in _TOKEN_RE.findall(text.lower())
        if token not in _STOPWORDS
    ]


class CountVectorizer(Estimator):
    """Bag-of-words counts over a fixed vocabulary learned in ``fit``."""

    def __init__(self, max_features: int | None = None, min_df: int = 1) -> None:
        if min_df < 1:
            raise ValueError("min_df must be >= 1")
        self.max_features = max_features
        self.min_df = min_df

    def fit(self, documents: list[str]) -> "CountVectorizer":
        doc_freq: Counter[str] = Counter()
        for doc in documents:
            doc_freq.update(set(tokenize(doc)))
        terms = [t for t, df in doc_freq.items() if df >= self.min_df]
        # Deterministic order: by descending document frequency then name.
        terms.sort(key=lambda t: (-doc_freq[t], t))
        if self.max_features is not None:
            terms = terms[: self.max_features]
        self.vocabulary_ = {term: i for i, term in enumerate(terms)}
        self.document_frequency_ = np.array(
            [doc_freq[t] for t in terms], dtype=float
        )
        self._n_documents = len(documents)
        self._fitted = True
        return self

    def transform(self, documents: list[str]) -> np.ndarray:
        self._require_fitted()
        X = np.zeros((len(documents), len(self.vocabulary_)))
        for i, doc in enumerate(documents):
            for token, count in Counter(tokenize(doc)).items():
                j = self.vocabulary_.get(token)
                if j is not None:
                    X[i, j] = count
        return X

    def fit_transform(self, documents: list[str]) -> np.ndarray:
        return self.fit(documents).transform(documents)


class TfidfVectorizer(CountVectorizer):
    """TF-IDF with smoothed IDF and L2 row normalization."""

    def _idf(self) -> np.ndarray:
        return np.log(
            (1.0 + self._n_documents) / (1.0 + self.document_frequency_)
        ) + 1.0

    def transform(self, documents: list[str]) -> np.ndarray:
        counts = super().transform(documents)
        X = counts * self._idf()
        norms = np.linalg.norm(X, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        return X / norms


def important_words(
    documents: list[str],
    labels,
    top_k: int = 50,
) -> list[str]:
    """Pick the words most indicative of each label (meta-features, §5.3).

    Scores each term by the absolute difference of its per-class document
    frequencies — a lightweight stand-in for the per-class "important
    words" mining of Potharaju & Jain [58].
    """
    labels = np.asarray(labels)
    classes = np.unique(labels)
    if len(classes) < 2:
        counts: Counter[str] = Counter()
        for doc in documents:
            counts.update(set(tokenize(doc)))
        return [t for t, _ in counts.most_common(top_k)]
    per_class: dict[object, Counter[str]] = {c: Counter() for c in classes}
    totals = Counter(labels.tolist())
    for doc, label in zip(documents, labels.tolist()):
        per_class[label].update(set(tokenize(doc)))
    vocabulary = set()
    for counter in per_class.values():
        vocabulary.update(counter)
    scores = {}
    for term in vocabulary:
        freqs = [
            per_class[c][term] / max(totals[c], 1) for c in classes
        ]
        scores[term] = max(freqs) - min(freqs)
    ranked = sorted(scores, key=lambda t: (-scores[t], t))
    return ranked[:top_k]
