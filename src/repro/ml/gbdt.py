"""Gradient-boosted decision trees (binary classification).

The paper's model study (Table 4) predates the now-standard gradient
boosting machines; this module adds one as a modern comparison point
for the Tab 4 bench and as a drop-in alternative supervised model for
Scouts.  Implementation: regression trees fit to the logistic-loss
gradient (Friedman's GBM with per-leaf Newton steps).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Classifier, as_rng, check_Xy, check_matrix

__all__ = ["RegressionTree", "GradientBoostingClassifier"]


@dataclass
class _RegNode:
    value: float
    depth: int
    feature: int | None = None
    threshold: float | None = None
    left: "_RegNode | None" = None
    right: "_RegNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class RegressionTree:
    """A CART regression tree (variance-reduction splits).

    ``leaf_value_fn(targets, indices)`` customizes leaf outputs —
    gradient boosting uses it for Newton steps; default is the mean.
    """

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        max_features: int | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = as_rng(rng)

    def fit(self, X, y, leaf_value_fn=None) -> "RegressionTree":
        X = check_matrix(X)
        y = np.asarray(y, dtype=float)
        if len(y) != len(X):
            raise ValueError("X and y must align")
        self.n_features_ = X.shape[1]
        self._leaf_value_fn = leaf_value_fn or (
            lambda targets, idx: float(targets.mean())
        )
        self.root_ = self._build(X, y, np.arange(len(y)), depth=0)
        self._fitted = True
        return self

    def _candidate_features(self) -> np.ndarray:
        if self.max_features is None or self.max_features >= self.n_features_:
            return np.arange(self.n_features_)
        return self._rng.choice(
            self.n_features_, size=self.max_features, replace=False
        )

    def _build(self, X, y, indices, depth) -> _RegNode:
        node = _RegNode(value=self._leaf_value_fn(y[indices], indices), depth=depth)
        if depth >= self.max_depth or len(indices) < 2 * self.min_samples_leaf:
            return node
        best = self._best_split(X, y, indices)
        if best is None:
            return node
        feature, threshold = best
        mask = X[indices, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X, y, indices[mask], depth + 1)
        node.right = self._build(X, y, indices[~mask], depth + 1)
        return node

    def _best_split(self, X, y, indices):
        targets = y[indices]
        total_sum = targets.sum()
        n = len(indices)
        parent_score = total_sum * total_sum / n
        best_gain, best = 1e-12, None
        for feature in self._candidate_features():
            values = X[indices, feature]
            order = np.argsort(values, kind="stable")
            sorted_values = values[order]
            sorted_targets = targets[order]
            prefix = np.cumsum(sorted_targets)
            diffs = np.diff(sorted_values)
            positions = np.flatnonzero(diffs > 0)
            if positions.size == 0:
                continue
            positions = positions[
                (positions + 1 >= self.min_samples_leaf)
                & (n - positions - 1 >= self.min_samples_leaf)
            ]
            if positions.size == 0:
                continue
            left_n = positions + 1
            left_sum = prefix[positions]
            right_n = n - left_n
            right_sum = total_sum - left_sum
            gains = (
                left_sum**2 / left_n + right_sum**2 / right_n - parent_score
            )
            local = int(np.argmax(gains))
            if gains[local] > best_gain:
                pos = positions[local]
                best_gain = float(gains[local])
                best = (
                    int(feature),
                    float(0.5 * (sorted_values[pos] + sorted_values[pos + 1])),
                )
        return best

    def predict(self, X) -> np.ndarray:
        X = check_matrix(X)
        out = np.empty(len(X))
        for i, row in enumerate(X):
            node = self.root_
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out


class GradientBoostingClassifier(Classifier):
    """Binary GBM with logistic loss and Newton leaf updates."""

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        subsample: float = 1.0,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self._rng = as_rng(rng)

    def fit(self, X, y) -> "GradientBoostingClassifier":
        X, y = check_Xy(X, y)
        encoded = self._encode_labels(y)
        if len(self.classes_) > 2:
            raise ValueError("GradientBoostingClassifier is binary-only")
        target = encoded.astype(float)  # class index 1 is "positive"
        n = len(target)
        self.n_features_ = X.shape[1]
        positive_rate = np.clip(target.mean(), 1e-6, 1.0 - 1e-6)
        self.base_score_ = float(np.log(positive_rate / (1.0 - positive_rate)))
        raw = np.full(n, self.base_score_)
        self.trees_: list[RegressionTree] = []
        for _ in range(self.n_estimators):
            proba = 1.0 / (1.0 + np.exp(-raw))
            residual = target - proba  # negative gradient of log-loss
            hessian = proba * (1.0 - proba)
            if self.subsample < 1.0:
                sample = self._rng.random(n) < self.subsample
                if not np.any(sample):
                    sample[:] = True
            else:
                sample = np.ones(n, dtype=bool)

            def newton_leaf(_, idx, residual=residual, hessian=hessian):
                # idx indexes into the subsample slice's original rows.
                num = residual[idx].sum()
                den = hessian[idx].sum() + 1e-9
                return float(num / den)

            rows = np.flatnonzero(sample)
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                rng=self._rng,
            )
            # Remap leaf index space onto the subsample.
            tree.fit(
                X[rows],
                residual[rows],
                leaf_value_fn=lambda _t, idx, rows=rows, residual=residual,
                hessian=hessian: float(
                    residual[rows[idx]].sum()
                    / (hessian[rows[idx]].sum() + 1e-9)
                ),
            )
            self.trees_.append(tree)
            raw += self.learning_rate * tree.predict(X)
        self._fitted = True
        return self

    def decision_function(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_matrix(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        raw = np.full(len(X), self.base_score_)
        for tree in self.trees_:
            raw += self.learning_rate * tree.predict(X)
        return raw

    def predict_proba(self, X) -> np.ndarray:
        raw = self.decision_function(X)
        positive = 1.0 / (1.0 + np.exp(-raw))
        if len(self.classes_) == 1:
            return np.ones((len(positive), 1))
        return np.column_stack([1.0 - positive, positive])
