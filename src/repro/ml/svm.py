"""One-class SVM for novelty detection.

Used in two roles in the paper: (a) as an alternative to the bag-of-words
RF in the model selector (Figure 8 compares "aggressive" — RBF kernel —
and "conservative" — polynomial kernel — variants), and (b) as the
anomaly-detection alternative to CPD that the authors rejected
(footnote 3: 86% precision / 98% recall).

We solve the standard ν-one-class-SVM dual

    min_α  (1/2) αᵀ K α    s.t.  0 ≤ αᵢ ≤ 1/(ν·n),  Σα = 1

with projected gradient descent; the projection onto the
box-constrained simplex uses the bisection method.
"""

from __future__ import annotations

import numpy as np

from .base import Estimator, check_matrix

__all__ = ["OneClassSVM", "rbf_kernel", "polynomial_kernel"]


def rbf_kernel(X: np.ndarray, Y: np.ndarray, gamma: float) -> np.ndarray:
    """Gaussian kernel ``exp(-gamma * ||x - y||^2)``."""
    d2 = (
        np.sum(X**2, axis=1)[:, None]
        - 2.0 * X @ Y.T
        + np.sum(Y**2, axis=1)[None, :]
    )
    np.maximum(d2, 0.0, out=d2)
    return np.exp(-gamma * d2)


def polynomial_kernel(
    X: np.ndarray, Y: np.ndarray, gamma: float, degree: int = 3, coef0: float = 1.0
) -> np.ndarray:
    """Polynomial kernel ``(gamma * <x, y> + coef0)^degree``."""
    return (gamma * (X @ Y.T) + coef0) ** degree


def _project_box_simplex(alpha: np.ndarray, upper: float) -> np.ndarray:
    """Project onto {0 <= a_i <= upper, sum(a) = 1} by bisection on the
    Lagrange multiplier of the sum constraint."""
    lo = alpha.min() - upper - 1.0
    hi = alpha.max() + 1.0
    for _ in range(100):
        tau = 0.5 * (lo + hi)
        total = np.clip(alpha - tau, 0.0, upper).sum()
        if total > 1.0:
            lo = tau
        else:
            hi = tau
        if hi - lo < 1e-12:
            break
    return np.clip(alpha - 0.5 * (lo + hi), 0.0, upper)


class OneClassSVM(Estimator):
    """ν-one-class SVM with RBF or polynomial kernel.

    Parameters
    ----------
    nu:
        Upper bound on the fraction of training outliers / lower bound
        on the fraction of support vectors. Higher ``nu`` with an RBF
        kernel gives the paper's "aggressive" selector (flags more
        inputs as novel); a polynomial kernel is "conservative".
    kernel:
        ``"rbf"`` or ``"poly"``.
    gamma:
        Kernel width; ``"scale"`` mimics sklearn (1 / (d * X.var())).
    """

    def __init__(
        self,
        nu: float = 0.1,
        kernel: str = "rbf",
        gamma: float | str = "scale",
        degree: int = 3,
        max_iter: int = 300,
    ) -> None:
        if not 0.0 < nu <= 1.0:
            raise ValueError("nu must be in (0, 1]")
        if kernel not in ("rbf", "poly"):
            raise ValueError(f"unknown kernel: {kernel!r}")
        self.nu = nu
        self.kernel = kernel
        self.gamma = gamma
        self.degree = degree
        self.max_iter = max_iter

    def _kernel(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        if self.kernel == "rbf":
            return rbf_kernel(X, Y, self._gamma)
        return polynomial_kernel(X, Y, self._gamma, degree=self.degree)

    def fit(self, X) -> "OneClassSVM":
        X = check_matrix(X)
        self.n_features_ = X.shape[1]
        n = X.shape[0]
        if self.gamma == "scale":
            var = X.var()
            self._gamma = 1.0 / (self.n_features_ * var) if var > 0 else 1.0
        else:
            self._gamma = float(self.gamma)
        self._X = X
        K = self._kernel(X, X)
        upper = 1.0 / (self.nu * n)
        alpha = np.full(n, 1.0 / n)
        alpha = _project_box_simplex(alpha, upper)
        # Lipschitz constant of the gradient is the top eigenvalue of K;
        # a power-iteration estimate keeps this cheap.
        vec = np.ones(n) / np.sqrt(n)
        for _ in range(20):
            vec = K @ vec
            norm = np.linalg.norm(vec)
            if norm == 0:
                break
            vec /= norm
        lipschitz = max(float(vec @ K @ vec), 1e-6)
        step = 1.0 / lipschitz
        for _ in range(self.max_iter):
            grad = K @ alpha
            new_alpha = _project_box_simplex(alpha - step * grad, upper)
            if np.max(np.abs(new_alpha - alpha)) < 1e-9:
                alpha = new_alpha
                break
            alpha = new_alpha
        self.alpha_ = alpha
        support = alpha > 1e-8
        self.support_ = np.flatnonzero(support)
        # rho: decision offset so that margin SVs (0 < a < upper) sit at 0.
        scores = K @ alpha
        margin = support & (alpha < upper - 1e-8)
        if np.any(margin):
            self.rho_ = float(np.mean(scores[margin]))
        else:
            self.rho_ = float(np.median(scores[support])) if np.any(support) else 0.0
        self._fitted = True
        return self

    def decision_function(self, X) -> np.ndarray:
        """Positive for inliers ("seen before"), negative for novelties."""
        self._require_fitted()
        X = check_matrix(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        return self._kernel(X, self._X) @ self.alpha_ - self.rho_

    def predict(self, X) -> np.ndarray:
        """+1 for inliers, -1 for novelties (sklearn convention)."""
        return np.where(self.decision_function(X) >= 0.0, 1, -1)
