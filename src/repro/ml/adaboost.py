"""AdaBoost (SAMME) over decision stumps.

Used both as a Table 4 comparison model and as one of the candidate
model-selector ("decider") algorithms in Figure 8.
"""

from __future__ import annotations

import numpy as np

from .base import Classifier, as_rng, check_Xy, check_matrix
from .tree import DecisionTreeClassifier

__all__ = ["AdaBoostClassifier"]


class AdaBoostClassifier(Classifier):
    """Discrete AdaBoost with shallow-tree weak learners (SAMME)."""

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 1.0,
        base_max_depth: int = 1,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.base_max_depth = base_max_depth
        self._rng = as_rng(rng)

    def fit(self, X, y) -> "AdaBoostClassifier":
        X, y = check_Xy(X, y)
        encoded = self._encode_labels(y)
        n = len(encoded)
        n_classes = len(self.classes_)
        weights = np.full(n, 1.0 / n)
        self.estimators_: list[DecisionTreeClassifier] = []
        self.estimator_weights_: list[float] = []
        for _ in range(self.n_estimators):
            stump = DecisionTreeClassifier(
                max_depth=self.base_max_depth, rng=self._rng
            )
            stump.fit(X, encoded, sample_weight=weights)
            pred = stump.predict(X)
            miss = pred != encoded
            err = float(weights[miss].sum())
            if err <= 1e-12:
                # Perfect weak learner: take it with a large weight, stop.
                self.estimators_.append(stump)
                self.estimator_weights_.append(10.0)
                break
            if err >= 1.0 - 1.0 / n_classes:
                # Worse than chance — boosting cannot continue.
                break
            alpha = self.learning_rate * (
                np.log((1.0 - err) / err) + np.log(n_classes - 1.0)
            )
            self.estimators_.append(stump)
            self.estimator_weights_.append(float(alpha))
            weights *= np.exp(alpha * miss)
            weights /= weights.sum()
        if not self.estimators_:
            # Degenerate data: fall back to a single stump so that
            # predict() still works.
            stump = DecisionTreeClassifier(
                max_depth=self.base_max_depth, rng=self._rng
            )
            stump.fit(X, encoded)
            self.estimators_.append(stump)
            self.estimator_weights_.append(1.0)
        self.n_features_ = X.shape[1]
        self._fitted = True
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_matrix(X)
        n_classes = len(self.classes_)
        scores = np.zeros((X.shape[0], n_classes))
        for stump, alpha in zip(self.estimators_, self.estimator_weights_):
            pred = stump.predict(X).astype(int)
            scores[np.arange(X.shape[0]), pred] += alpha
        total = scores.sum(axis=1, keepdims=True)
        total[total == 0.0] = 1.0
        return scores / total
