"""Model inspection: permutation feature importance.

Impurity-based RF importances (used for explanations) are biased toward
high-cardinality features; permutation importance measures what a
feature is *worth* by destroying it — shuffle one column and watch the
score drop.  Figure 9's "most influential monitoring systems" ordering
can be computed either way; this gives the model-agnostic option.
"""

from __future__ import annotations

import numpy as np

from .base import as_rng
from .metrics import f1_score

__all__ = ["permutation_importance"]


def permutation_importance(
    model,
    X,
    y,
    n_repeats: int = 3,
    score_fn=None,
    rng: int | np.random.Generator | None = 0,
    columns: list[int] | None = None,
) -> np.ndarray:
    """Mean score drop per (permuted) feature column.

    ``model`` must expose ``predict``; ``score_fn(y_true, y_pred)``
    defaults to the F1 score.  Returns an array aligned with ``columns``
    (default: all features).  Negative values mean permuting the column
    *helped* — i.e., the feature is noise.
    """
    if n_repeats < 1:
        raise ValueError("n_repeats must be >= 1")
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if len(X) != len(y):
        raise ValueError("X and y must align")
    rng = as_rng(rng)
    score_fn = score_fn or f1_score
    baseline = score_fn(y, model.predict(X))
    if columns is None:
        columns = list(range(X.shape[1]))
    importances = np.zeros(len(columns))
    work = X.copy()
    for j, column in enumerate(columns):
        original = work[:, column].copy()
        drops = []
        for _ in range(n_repeats):
            work[:, column] = rng.permutation(original)
            drops.append(baseline - score_fn(y, model.predict(work)))
        work[:, column] = original
        importances[j] = float(np.mean(drops))
    return importances
