"""Multinomial logistic regression (softmax classifier).

Used by the NLP baseline router to produce a full ranked list of teams
with calibrated-ish probabilities, matching the production recommender's
"ranked list along with categorical confidence scores" output (§7).
"""

from __future__ import annotations

import numpy as np

from .base import Classifier, check_Xy, check_matrix

__all__ = ["LogisticRegression"]


class LogisticRegression(Classifier):
    """Softmax regression trained with full-batch gradient descent."""

    def __init__(
        self,
        learning_rate: float = 0.5,
        max_iter: int = 500,
        l2: float = 1e-4,
        tol: float = 1e-6,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.l2 = l2
        self.tol = tol

    def fit(self, X, y) -> "LogisticRegression":
        X, y = check_Xy(X, y)
        encoded = self._encode_labels(y)
        n, d = X.shape
        k = len(self.classes_)
        self.n_features_ = d
        W = np.zeros((d, k))
        b = np.zeros(k)
        onehot = np.zeros((n, k))
        onehot[np.arange(n), encoded] = 1.0
        previous_loss = np.inf
        for _ in range(self.max_iter):
            logits = X @ W + b
            logits -= logits.max(axis=1, keepdims=True)
            proba = np.exp(logits)
            proba /= proba.sum(axis=1, keepdims=True)
            loss = (
                -np.sum(onehot * np.log(proba + 1e-12)) / n
                + 0.5 * self.l2 * np.sum(W**2)
            )
            grad_logits = (proba - onehot) / n
            grad_W = X.T @ grad_logits + self.l2 * W
            grad_b = grad_logits.sum(axis=0)
            W -= self.learning_rate * grad_W
            b -= self.learning_rate * grad_b
            if abs(previous_loss - loss) < self.tol:
                break
            previous_loss = loss
        self.coef_ = W
        self.intercept_ = b
        self._fitted = True
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_matrix(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        logits = X @ self.coef_ + self.intercept_
        logits -= logits.max(axis=1, keepdims=True)
        proba = np.exp(logits)
        proba /= proba.sum(axis=1, keepdims=True)
        return proba
