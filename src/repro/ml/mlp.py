"""A one-hidden-layer neural network (Table 4's "Neural Network (1 layer)").

Plain numpy implementation: ReLU hidden layer, softmax output,
cross-entropy loss, mini-batch Adam, early stopping on training loss.
"""

from __future__ import annotations

import numpy as np

from .base import Classifier, as_rng, check_Xy, check_matrix

__all__ = ["MLPClassifier"]


def _relu(z: np.ndarray) -> np.ndarray:
    return np.maximum(z, 0.0)


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class MLPClassifier(Classifier):
    """Single-hidden-layer perceptron trained with Adam."""

    def __init__(
        self,
        hidden_size: int = 64,
        learning_rate: float = 1e-3,
        batch_size: int = 32,
        max_epochs: int = 200,
        l2: float = 1e-4,
        tol: float = 1e-5,
        patience: int = 10,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if hidden_size < 1:
            raise ValueError("hidden_size must be >= 1")
        self.hidden_size = hidden_size
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.max_epochs = max_epochs
        self.l2 = l2
        self.tol = tol
        self.patience = patience
        self._rng = as_rng(rng)

    def fit(self, X, y) -> "MLPClassifier":
        X, y = check_Xy(X, y)
        encoded = self._encode_labels(y)
        n, d = X.shape
        k = len(self.classes_)
        self.n_features_ = d
        # Standardize inputs internally; store parameters for predict.
        self._mu = X.mean(axis=0)
        sigma = X.std(axis=0)
        sigma[sigma == 0.0] = 1.0
        self._sigma = sigma
        Xs = (X - self._mu) / self._sigma

        h = self.hidden_size
        rng = self._rng
        scale1 = np.sqrt(2.0 / d)
        scale2 = np.sqrt(2.0 / h)
        params = {
            "W1": rng.normal(0.0, scale1, size=(d, h)),
            "b1": np.zeros(h),
            "W2": rng.normal(0.0, scale2, size=(h, k)),
            "b2": np.zeros(k),
        }
        onehot = np.zeros((n, k))
        onehot[np.arange(n), encoded] = 1.0

        m = {key: np.zeros_like(val) for key, val in params.items()}
        v = {key: np.zeros_like(val) for key, val in params.items()}
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        best_loss = np.inf
        stale = 0

        for _epoch in range(self.max_epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                xb, yb = Xs[idx], onehot[idx]
                z1 = xb @ params["W1"] + params["b1"]
                a1 = _relu(z1)
                logits = a1 @ params["W2"] + params["b2"]
                proba = _softmax(logits)
                batch = len(idx)
                loss = -np.sum(yb * np.log(proba + 1e-12)) / batch
                epoch_loss += loss * batch

                dlogits = (proba - yb) / batch
                grads = {
                    "W2": a1.T @ dlogits + self.l2 * params["W2"],
                    "b2": dlogits.sum(axis=0),
                }
                da1 = dlogits @ params["W2"].T
                dz1 = da1 * (z1 > 0)
                grads["W1"] = xb.T @ dz1 + self.l2 * params["W1"]
                grads["b1"] = dz1.sum(axis=0)

                step += 1
                for key in params:
                    m[key] = beta1 * m[key] + (1 - beta1) * grads[key]
                    v[key] = beta2 * v[key] + (1 - beta2) * grads[key] ** 2
                    m_hat = m[key] / (1 - beta1**step)
                    v_hat = v[key] / (1 - beta2**step)
                    params[key] -= (
                        self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)
                    )
            epoch_loss /= n
            if epoch_loss < best_loss - self.tol:
                best_loss = epoch_loss
                stale = 0
            else:
                stale += 1
                if stale >= self.patience:
                    break

        self._params = params
        self._fitted = True
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_matrix(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        Xs = (X - self._mu) / self._sigma
        a1 = _relu(Xs @ self._params["W1"] + self._params["b1"])
        return _softmax(a1 @ self._params["W2"] + self._params["b2"])
