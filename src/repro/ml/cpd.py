"""Nonparametric change-point detection.

The unsupervised arm of the Scout (CPD+, §5.2.2) builds on change-point
detection "that detects when a time series goes from one stationary
distribution to another" [51] (Matteson & James, e-divisive).  This
module implements:

* :func:`energy_statistic` — the two-sample E-divisive divergence.
* :class:`EDivisive` — binary segmentation with a permutation test.
* :class:`CusumDetector` — a cheap mean-shift CUSUM alternative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import as_rng

__all__ = ["energy_statistic", "EDivisive", "CusumDetector", "ChangePoint"]


@dataclass(frozen=True)
class ChangePoint:
    """A detected change at ``index`` with its divergence ``score``."""

    index: int
    score: float


def energy_statistic(left: np.ndarray, right: np.ndarray, alpha: float = 1.0) -> float:
    """E-divisive sample divergence between two 1-D samples.

    ``E = 2*E|X-Y|^a - E|X-X'|^a - E|Y-Y'|^a`` scaled by
    ``m*n/(m+n)``; larger values mean the samples are more likely drawn
    from different distributions.
    """
    left = np.asarray(left, dtype=float)
    right = np.asarray(right, dtype=float)
    m, n = len(left), len(right)
    if m == 0 or n == 0:
        return 0.0
    cross = np.abs(left[:, None] - right[None, :]) ** alpha
    within_l = np.abs(left[:, None] - left[None, :]) ** alpha
    within_r = np.abs(right[:, None] - right[None, :]) ** alpha
    e = (
        2.0 * cross.mean()
        - (within_l.sum() / (m * m))
        - (within_r.sum() / (n * n))
    )
    return float(e * m * n / (m + n))


class EDivisive:
    """Binary-segmentation e-divisive change-point detector.

    Parameters
    ----------
    min_segment:
        Minimum points on each side of a candidate change.
    n_permutations:
        Permutations for the significance test at each segmentation step.
    significance:
        Required significance level (permutation p-value).
    """

    def __init__(
        self,
        min_segment: int = 5,
        n_permutations: int = 19,
        significance: float = 0.05,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if min_segment < 2:
            raise ValueError("min_segment must be >= 2")
        self.min_segment = min_segment
        self.n_permutations = n_permutations
        self.significance = significance
        self._rng = as_rng(rng)

    def _best_split(self, values: np.ndarray) -> ChangePoint | None:
        n = len(values)
        if n < 2 * self.min_segment:
            return None
        best_idx, best_score = -1, -np.inf
        for idx in range(self.min_segment, n - self.min_segment + 1):
            score = energy_statistic(values[:idx], values[idx:])
            if score > best_score:
                best_idx, best_score = idx, score
        if best_idx < 0:
            return None
        return ChangePoint(index=best_idx, score=best_score)

    def _significant(self, values: np.ndarray, observed: float) -> bool:
        exceed = 0
        for _ in range(self.n_permutations):
            shuffled = self._rng.permutation(values)
            candidate = self._best_split(shuffled)
            if candidate is not None and candidate.score >= observed:
                exceed += 1
        p_value = (exceed + 1) / (self.n_permutations + 1)
        return p_value <= self.significance

    def detect(self, values, max_points: int | None = None) -> list[ChangePoint]:
        """All significant change points (indices into ``values``)."""
        values = np.asarray(values, dtype=float)
        found: list[ChangePoint] = []
        queue: list[tuple[int, np.ndarray]] = [(0, values)]
        while queue:
            offset, segment = queue.pop()
            candidate = self._best_split(segment)
            if candidate is None:
                continue
            if not self._significant(segment, candidate.score):
                continue
            split = candidate.index
            found.append(ChangePoint(offset + split, candidate.score))
            if max_points is not None and len(found) >= max_points:
                break
            queue.append((offset, segment[:split]))
            queue.append((offset + split, segment[split:]))
        return sorted(found, key=lambda cp: cp.index)


class CusumDetector:
    """Mean-shift CUSUM detector with a standardized threshold.

    Much cheaper than :class:`EDivisive`; used where the Scout needs to
    scan many series quickly.  A change is flagged when the cumulative
    sum of standardized deviations exceeds ``threshold`` standard units.
    """

    def __init__(self, threshold: float = 5.0, drift: float = 0.5) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = threshold
        self.drift = drift

    def detect_any(self, matrix) -> np.ndarray:
        """Row-wise "has at least one change point" over equal-length series.

        Equivalent to ``[bool(self.detect(row)) for row in matrix]``: a
        series has a detection iff the *first* CUSUM scan crosses the
        threshold anywhere, so the reset-and-rescan loop of
        :meth:`detect` is unnecessary and all rows batch into one pass.
        CPD+ scans every observable device of a component group and only
        needs this boolean per device.
        """
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("detect_any expects a 2-D (rows, samples) array")
        out = np.zeros(matrix.shape[0], dtype=bool)
        if matrix.shape[1] < 3:
            return out
        std = matrix.std(axis=1)
        ok = std != 0.0
        if not np.any(ok):
            return out
        rows = matrix[ok]
        z = (rows - rows.mean(axis=1, keepdims=True)) / std[ok, np.newaxis]
        s_pos = np.cumsum(z - self.drift, axis=1)
        s_neg = np.cumsum(-z - self.drift, axis=1)
        pos = s_pos - np.minimum.accumulate(np.minimum(s_pos, 0.0), axis=1)
        neg = s_neg - np.minimum.accumulate(np.minimum(s_neg, 0.0), axis=1)
        out[ok] = (
            (pos > self.threshold) | (neg > self.threshold)
        ).any(axis=1)
        return out

    def detect(self, values) -> list[ChangePoint]:
        values = np.asarray(values, dtype=float)
        if len(values) < 3:
            return []
        std = values.std()
        if std == 0.0:
            return []
        z = (values - values.mean()) / std
        # Vectorized CUSUM: the recurrence p_i = max(0, p_{i-1} + x_i)
        # equals S_i - min(0, S_1, .., S_i) for S = cumsum(x), so each
        # segment between detections is two cumsums and a running min.
        # Detections reset the state, so re-scan from just past each hit;
        # the loop runs once per change point, not once per sample.
        found: list[ChangePoint] = []
        start = 0
        n = len(z)
        while start < n:
            seg = z[start:]
            s_pos = np.cumsum(seg - self.drift)
            s_neg = np.cumsum(-seg - self.drift)
            pos = s_pos - np.minimum.accumulate(np.minimum(s_pos, 0.0))
            neg = s_neg - np.minimum.accumulate(np.minimum(s_neg, 0.0))
            hits = np.flatnonzero((pos > self.threshold) | (neg > self.threshold))
            if hits.size == 0:
                break
            i = int(hits[0])
            found.append(
                ChangePoint(index=start + i, score=float(max(pos[i], neg[i])))
            )
            start += i + 1
        return found
