"""Quadratic discriminant analysis (Table 4 comparison model)."""

from __future__ import annotations

import numpy as np

from .base import Classifier, check_Xy, check_matrix

__all__ = ["QuadraticDiscriminantAnalysis"]


class QuadraticDiscriminantAnalysis(Classifier):
    """Per-class Gaussian with full covariance, regularized for stability.

    ``reg_param`` shrinks each class covariance toward a scaled identity,
    which keeps the model usable on the Scout's high-dimensional,
    sometimes-degenerate feature vectors.
    """

    def __init__(self, reg_param: float = 1e-3) -> None:
        if not 0.0 <= reg_param <= 1.0:
            raise ValueError("reg_param must be in [0, 1]")
        self.reg_param = reg_param

    def fit(self, X, y) -> "QuadraticDiscriminantAnalysis":
        X, y = check_Xy(X, y)
        encoded = self._encode_labels(y)
        n_classes = len(self.classes_)
        self.n_features_ = X.shape[1]
        self.means_ = np.zeros((n_classes, self.n_features_))
        self.priors_ = np.zeros(n_classes)
        self._precisions: list[np.ndarray] = []
        self._log_dets: list[float] = []
        eye = np.eye(self.n_features_)
        for c in range(n_classes):
            rows = X[encoded == c]
            self.means_[c] = rows.mean(axis=0)
            self.priors_[c] = len(rows) / len(encoded)
            cov = np.cov(rows, rowvar=False, bias=False)
            cov = np.atleast_2d(cov)
            scale = max(np.trace(cov) / self.n_features_, 1e-12)
            cov = (1.0 - self.reg_param) * cov + self.reg_param * scale * eye
            # Extra jitter guards against singular covariance when a class
            # has fewer samples than features.
            cov += 1e-9 * scale * eye
            sign, log_det = np.linalg.slogdet(cov)
            if sign <= 0:
                cov += 1e-6 * scale * eye
                sign, log_det = np.linalg.slogdet(cov)
            self._precisions.append(np.linalg.inv(cov))
            self._log_dets.append(float(log_det))
        self._fitted = True
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_matrix(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        log_proba = np.zeros((X.shape[0], len(self.classes_)))
        for c in range(len(self.classes_)):
            centered = X - self.means_[c]
            mahala = np.sum(centered @ self._precisions[c] * centered, axis=1)
            log_proba[:, c] = (
                np.log(self.priors_[c]) - 0.5 * (self._log_dets[c] + mahala)
            )
        log_proba -= log_proba.max(axis=1, keepdims=True)
        proba = np.exp(log_proba)
        proba /= proba.sum(axis=1, keepdims=True)
        return proba
