"""Classification metrics used throughout the paper's evaluation (§7).

The paper reports precision, recall and F1-score for the positive
("team is responsible") class, plus multi-class accuracy for the NLP
baseline.  All functions accept arbitrary label types.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "precision_score",
    "recall_score",
    "f1_score",
    "accuracy_score",
    "confusion_matrix",
    "BinaryReport",
    "classification_report",
]


def _binary_counts(y_true, y_pred, positive) -> tuple[int, int, int, int]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    tp = int(np.sum((y_pred == positive) & (y_true == positive)))
    fp = int(np.sum((y_pred == positive) & (y_true != positive)))
    fn = int(np.sum((y_pred != positive) & (y_true == positive)))
    tn = int(np.sum((y_pred != positive) & (y_true != positive)))
    return tp, fp, fn, tn


def precision_score(y_true, y_pred, positive=1) -> float:
    """Fraction of positive predictions that are correct.

    A precision of 0.9 means: when the Scout says "PhyNet is
    responsible", it is right 90% of the time.
    """
    tp, fp, _, _ = _binary_counts(y_true, y_pred, positive)
    return tp / (tp + fp) if tp + fp else 0.0


def recall_score(y_true, y_pred, positive=1) -> float:
    """Fraction of true positives the classifier finds."""
    tp, _, fn, _ = _binary_counts(y_true, y_pred, positive)
    return tp / (tp + fn) if tp + fn else 0.0


def f1_score(y_true, y_pred, positive=1) -> float:
    """Harmonic mean of precision and recall."""
    p = precision_score(y_true, y_pred, positive)
    r = recall_score(y_true, y_pred, positive)
    return 2 * p * r / (p + r) if p + r else 0.0


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exactly-correct predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, labels=None) -> np.ndarray:
    """Confusion matrix ``C[i, j]``: true class ``i`` predicted as ``j``."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = np.asarray(labels)
    index = {label: i for i, label in enumerate(labels.tolist())}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for t, p in zip(y_true.tolist(), y_pred.tolist()):
        matrix[index[t], index[p]] += 1
    return matrix


@dataclass(frozen=True)
class BinaryReport:
    """Precision/recall/F1 summary for one positive class."""

    precision: float
    recall: float
    f1: float
    support: int

    def __str__(self) -> str:
        return (
            f"precision={self.precision:.3f} recall={self.recall:.3f} "
            f"f1={self.f1:.3f} (n={self.support})"
        )


def classification_report(y_true, y_pred, positive=1) -> BinaryReport:
    """Compute the paper's three accuracy metrics in one shot."""
    y_true = np.asarray(y_true)
    return BinaryReport(
        precision=precision_score(y_true, y_pred, positive),
        recall=recall_score(y_true, y_pred, positive),
        f1=f1_score(y_true, y_pred, positive),
        support=int(np.sum(y_true == positive)),
    )
