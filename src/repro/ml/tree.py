"""CART decision-tree classifier with sample weights.

This is the building block of the random forest (§5.2.1).  It records,
for every node, the class distribution of the training samples that
reached it — which is what the feature-contribution explanation method
of Palczewska et al. [57] (used by the deployed PhyNet Scout) needs.

Fitting produces two views of the same tree:

* ``root_`` — the linked :class:`TreeNode` structure, kept for
  introspection and as the reference implementation of prediction;
* ``flat_`` — a :class:`FlatTree` of parallel numpy arrays (preorder
  node layout), which powers the vectorized batch ``predict_proba``
  and the feature-contribution walk.

Batch prediction advances *all* rows one tree level per iteration
instead of walking Python objects row by row, so its cost scales with
tree depth, not with ``n_rows × depth`` Python-level steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .base import Classifier, as_rng, check_Xy, check_matrix

__all__ = ["DecisionTreeClassifier", "TreeNode", "FlatTree"]

_NO_FEATURE = -1


@dataclass
class TreeNode:
    """One node of a fitted decision tree.

    ``distribution`` is the weighted class distribution (normalized to
    sum to 1) of training samples that reached the node.
    """

    distribution: np.ndarray
    n_samples: int
    depth: int
    feature: int | None = None
    threshold: float | None = None
    left: "TreeNode | None" = field(default=None, repr=False)
    right: "TreeNode | None" = field(default=None, repr=False)

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


@dataclass(frozen=True)
class FlatTree:
    """A fitted tree compiled into parallel arrays (preorder layout).

    ``feature[i] == -1`` marks node ``i`` as a leaf; for leaves,
    ``threshold`` / ``children_*`` entries are unused.  ``distribution``
    stacks every node's class distribution into one matrix so batch
    prediction is a single fancy-index into it.
    """

    feature: np.ndarray  # (n_nodes,) int32, -1 for leaves
    threshold: np.ndarray  # (n_nodes,) float64
    children_left: np.ndarray  # (n_nodes,) int32
    children_right: np.ndarray  # (n_nodes,) int32
    distribution: np.ndarray  # (n_nodes, n_classes) float64
    n_samples: np.ndarray  # (n_nodes,) int64
    depth: np.ndarray  # (n_nodes,) int32

    @property
    def n_nodes(self) -> int:
        return len(self.feature)

    @classmethod
    def from_nodes(cls, root: TreeNode, n_classes: int) -> "FlatTree":
        """Compile a linked node tree into flat arrays (iteratively)."""
        nodes: list[TreeNode] = []
        stack = [root]
        while stack:
            node = stack.pop()
            nodes.append(node)
            if not node.is_leaf:
                # Push right first so the left child is processed next:
                # preorder layout, matching the recursive reading order.
                stack.append(node.right)
                stack.append(node.left)
        index = {id(node): i for i, node in enumerate(nodes)}
        n = len(nodes)
        feature = np.full(n, _NO_FEATURE, dtype=np.int32)
        threshold = np.zeros(n, dtype=np.float64)
        children_left = np.full(n, _NO_FEATURE, dtype=np.int32)
        children_right = np.full(n, _NO_FEATURE, dtype=np.int32)
        distribution = np.empty((n, n_classes), dtype=np.float64)
        n_samples = np.empty(n, dtype=np.int64)
        depth = np.empty(n, dtype=np.int32)
        for i, node in enumerate(nodes):
            distribution[i] = node.distribution
            n_samples[i] = node.n_samples
            depth[i] = node.depth
            if not node.is_leaf:
                feature[i] = node.feature
                threshold[i] = node.threshold
                children_left[i] = index[id(node.left)]
                children_right[i] = index[id(node.right)]
        return cls(
            feature=feature,
            threshold=threshold,
            children_left=children_left,
            children_right=children_right,
            distribution=distribution,
            n_samples=n_samples,
            depth=depth,
        )

    def leaf_indices(self, X: np.ndarray) -> np.ndarray:
        """The leaf node index each row of ``X`` lands in.

        Level-synchronous traversal: every iteration advances all
        still-internal rows one level, so the loop runs ``depth`` times
        regardless of batch size.
        """
        idx = np.zeros(X.shape[0], dtype=np.int32)
        feature = self.feature
        if self.n_nodes == 1:
            return idx
        threshold = self.threshold
        left = self.children_left
        right = self.children_right
        active = np.arange(X.shape[0])
        while active.size:
            cur = idx[active]
            f = feature[cur]
            go_left = X[active, f] <= threshold[cur]
            idx[active] = np.where(go_left, left[cur], right[cur])
            active = active[feature[idx[active]] != _NO_FEATURE]
        return idx

    def decision_path(self, row: np.ndarray) -> list[int]:
        """Node indices visited from root to leaf for one sample."""
        path = [0]
        node = 0
        while self.feature[node] != _NO_FEATURE:
            if row[self.feature[node]] <= self.threshold[node]:
                node = int(self.children_left[node])
            else:
                node = int(self.children_right[node])
            path.append(node)
        return path


def _gini(class_weights: np.ndarray) -> float:
    """Gini impurity of a weighted class-count vector."""
    total = class_weights.sum()
    if total <= 0.0:
        return 0.0
    p = class_weights / total
    return float(1.0 - np.dot(p, p))


class DecisionTreeClassifier(Classifier):
    """A CART classifier (gini criterion, binary numeric splits).

    Parameters mirror sklearn: ``max_depth``, ``min_samples_split``,
    ``min_samples_leaf`` and ``max_features`` (``"sqrt"``, an int, a
    float fraction, or None for all features).  ``rng`` controls the
    feature subsampling used inside random forests.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: str | int | float | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = as_rng(rng)

    # -- fitting -----------------------------------------------------------

    def fit(self, X, y, sample_weight=None) -> "DecisionTreeClassifier":
        X, y = check_Xy(X, y)
        encoded = self._encode_labels(y)
        if sample_weight is None:
            sample_weight = np.ones(len(encoded))
        else:
            sample_weight = np.asarray(sample_weight, dtype=float)
            if sample_weight.shape != encoded.shape:
                raise ValueError("sample_weight length must match y")
            if np.any(sample_weight < 0):
                raise ValueError("sample_weight must be non-negative")
        self.n_features_ = X.shape[1]
        self._n_classes = len(self.classes_)
        self._feature_importance_acc = np.zeros(self.n_features_)
        self.root_ = self._build(X, encoded, sample_weight)
        self.flat_ = FlatTree.from_nodes(self.root_, self._n_classes)
        total = self._feature_importance_acc.sum()
        self.feature_importances_ = (
            self._feature_importance_acc / total
            if total > 0
            else np.zeros(self.n_features_)
        )
        self._fitted = True
        return self

    def _n_candidate_features(self) -> int:
        m = self.max_features
        if m is None:
            return self.n_features_
        if m == "sqrt":
            return max(1, int(np.sqrt(self.n_features_)))
        if m == "log2":
            return max(1, int(np.log2(self.n_features_)))
        if isinstance(m, float):
            return max(1, int(m * self.n_features_))
        if isinstance(m, int):
            return max(1, min(m, self.n_features_))
        raise ValueError(f"bad max_features: {m!r}")

    def _class_weights(self, y: np.ndarray, w: np.ndarray) -> np.ndarray:
        return np.bincount(y, weights=w, minlength=self._n_classes)

    def _make_node(
        self, y: np.ndarray, w: np.ndarray, depth: int
    ) -> tuple[TreeNode, np.ndarray, float]:
        counts = self._class_weights(y, w)
        total = counts.sum()
        distribution = counts / total if total > 0 else np.full(
            self._n_classes, 1.0 / self._n_classes
        )
        node = TreeNode(distribution=distribution, n_samples=len(y), depth=depth)
        return node, counts, total

    def _build(self, X: np.ndarray, y: np.ndarray, w: np.ndarray) -> TreeNode:
        """Grow the tree depth-first with an explicit stack.

        The stack replaces recursion so arbitrarily deep trees (no
        ``max_depth``) cannot hit Python's recursion limit.  Children
        are pushed right-then-left, preserving the preorder in which the
        recursive formulation consumed the feature-subsampling rng.
        """
        root, counts, total = self._make_node(y, w, depth=0)
        stack: list[tuple[TreeNode, np.ndarray, np.ndarray, np.ndarray, np.ndarray, float]] = [
            (root, X, y, w, counts, total)
        ]
        while stack:
            node, Xn, yn, wn, counts, total = stack.pop()
            if (
                len(yn) < self.min_samples_split
                or (self.max_depth is not None and node.depth >= self.max_depth)
                or np.count_nonzero(counts) <= 1
            ):
                continue
            split = self._best_split(Xn, yn, wn, counts)
            if split is None:
                continue
            feature, threshold, gain = split
            node.feature = feature
            node.threshold = threshold
            self._feature_importance_acc[feature] += gain * total
            mask = Xn[:, feature] <= threshold
            inv = ~mask
            left, lcounts, ltotal = self._make_node(
                yn[mask], wn[mask], node.depth + 1
            )
            right, rcounts, rtotal = self._make_node(
                yn[inv], wn[inv], node.depth + 1
            )
            node.left = left
            node.right = right
            stack.append((right, Xn[inv], yn[inv], wn[inv], rcounts, rtotal))
            stack.append((left, Xn[mask], yn[mask], wn[mask], lcounts, ltotal))
        return root

    def _best_split(
        self,
        X: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        counts: np.ndarray,
    ) -> tuple[int, float, float] | None:
        """Find the (feature, threshold) pair with the best gini gain."""
        parent_impurity = _gini(counts)
        if parent_impurity == 0.0:
            return None
        n_candidates = self._n_candidate_features()
        if n_candidates < self.n_features_:
            features = self._rng.choice(
                self.n_features_, size=n_candidates, replace=False
            )
        else:
            features = np.arange(self.n_features_)

        best: tuple[int, float, float] | None = None
        best_score = 0.0
        total_weight = w.sum()
        onehot = np.zeros((len(y), self._n_classes))
        onehot[np.arange(len(y)), y] = w
        min_leaf = self.min_samples_leaf

        for feature in features:
            values = X[:, feature]
            order = np.argsort(values, kind="stable")
            sorted_values = values[order]
            # Cumulative weighted class counts for the "left" side.
            left_counts = np.cumsum(onehot[order], axis=0)
            # Valid split positions: value changes and both leaves large
            # enough (in sample count).
            diffs = np.diff(sorted_values)
            positions = np.flatnonzero(diffs > 0)
            if positions.size == 0:
                continue
            positions = positions[
                (positions + 1 >= min_leaf)
                & (len(y) - positions - 1 >= min_leaf)
            ]
            if positions.size == 0:
                continue
            left = left_counts[positions]
            right = counts - left
            left_total = left.sum(axis=1)
            right_total = right.sum(axis=1)
            ok = (left_total > 0) & (right_total > 0)
            if not np.any(ok):
                continue
            left_gini = 1.0 - np.sum(
                (left[ok] / left_total[ok, None]) ** 2, axis=1
            )
            right_gini = 1.0 - np.sum(
                (right[ok] / right_total[ok, None]) ** 2, axis=1
            )
            weighted = (
                left_total[ok] * left_gini + right_total[ok] * right_gini
            ) / total_weight
            gains = parent_impurity - weighted
            best_local = int(np.argmax(gains))
            if gains[best_local] > best_score + 1e-12:
                pos = positions[ok][best_local]
                threshold = 0.5 * (sorted_values[pos] + sorted_values[pos + 1])
                best_score = float(gains[best_local])
                best = (int(feature), float(threshold), best_score)
        return best

    # -- prediction --------------------------------------------------------

    def _leaf_path(self, row: np.ndarray) -> list[TreeNode]:
        """Nodes visited from root to leaf for one sample."""
        node = self.root_
        path = [node]
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
            path.append(node)
        return path

    def _check_predict_input(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_matrix(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        return X

    def predict_proba(self, X) -> np.ndarray:
        X = self._check_predict_input(X)
        return self.flat_.distribution[self.flat_.leaf_indices(X)]

    def predict_proba_nodes(self, X) -> np.ndarray:
        """Reference implementation: per-row walk of the node objects.

        Kept for equivalence testing against the vectorized flat-array
        path; do not use in hot loops.
        """
        X = self._check_predict_input(X)
        return np.vstack([self._leaf_path(row)[-1].distribution for row in X])

    def decision_contributions(self, row: np.ndarray) -> np.ndarray:
        """Per-feature contributions for one sample (Palczewska et al.).

        Returns an array of shape ``(n_features, n_classes)``: the sum of
        class-probability deltas along the decision path, attributed to
        the feature tested at each split.  The prediction decomposes as
        ``root.distribution + contributions.sum(axis=0)``.
        """
        self._require_fitted()
        row = np.asarray(row, dtype=float)
        contributions = np.zeros((self.n_features_, self._n_classes))
        flat = self.flat_
        path = flat.decision_path(row)
        if len(path) > 1:
            parents = np.asarray(path[:-1], dtype=np.int64)
            children = np.asarray(path[1:], dtype=np.int64)
            deltas = flat.distribution[children] - flat.distribution[parents]
            np.add.at(contributions, flat.feature[parents], deltas)
        return contributions

    # -- introspection -----------------------------------------------------

    @property
    def depth_(self) -> int:
        """Maximum leaf depth (computed from the flat arrays, no recursion)."""
        self._require_fitted()
        leaves = self.flat_.feature == _NO_FEATURE
        return int(self.flat_.depth[leaves].max())

    @property
    def n_leaves_(self) -> int:
        """Number of leaves (computed from the flat arrays, no recursion)."""
        self._require_fitted()
        return int(np.count_nonzero(self.flat_.feature == _NO_FEATURE))
