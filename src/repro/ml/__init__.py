"""From-scratch ML substrate for the Scouts reproduction.

Every model the paper references — the Scout's random forest, the CPD+
change-point machinery, the model-selector alternatives of Figure 8, and
the Table 4 comparison classifiers — implemented on numpy.
"""

from .adaboost import AdaBoostClassifier
from .base import Classifier, Estimator, NotFittedError, as_rng, resolve_n_jobs
from .cpd import ChangePoint, CusumDetector, EDivisive, energy_statistic
from .forest import RandomForestClassifier
from .gbdt import GradientBoostingClassifier, RegressionTree
from .inspection import permutation_importance
from .knn import KNeighborsClassifier
from .linear import LogisticRegression
from .metrics import (
    BinaryReport,
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
)
from .mlp import MLPClassifier
from .naive_bayes import GaussianNB, MultinomialNB
from .preprocessing import (
    MeanImputer,
    MinMaxScaler,
    StandardScaler,
    normalize_series,
)
from .qda import QuadraticDiscriminantAnalysis
from .svm import OneClassSVM, polynomial_kernel, rbf_kernel
from .text import CountVectorizer, TfidfVectorizer, important_words, tokenize
from .tree import DecisionTreeClassifier, TreeNode
from .validation import imbalance_aware_split, time_based_windows, train_test_split

__all__ = [
    "AdaBoostClassifier",
    "BinaryReport",
    "ChangePoint",
    "Classifier",
    "CountVectorizer",
    "CusumDetector",
    "DecisionTreeClassifier",
    "EDivisive",
    "Estimator",
    "GaussianNB",
    "GradientBoostingClassifier",
    "RegressionTree",
    "permutation_importance",
    "KNeighborsClassifier",
    "LogisticRegression",
    "MLPClassifier",
    "MeanImputer",
    "MinMaxScaler",
    "MultinomialNB",
    "NotFittedError",
    "OneClassSVM",
    "QuadraticDiscriminantAnalysis",
    "RandomForestClassifier",
    "StandardScaler",
    "TfidfVectorizer",
    "TreeNode",
    "accuracy_score",
    "as_rng",
    "resolve_n_jobs",
    "classification_report",
    "confusion_matrix",
    "energy_statistic",
    "f1_score",
    "imbalance_aware_split",
    "important_words",
    "normalize_series",
    "polynomial_kernel",
    "precision_score",
    "rbf_kernel",
    "recall_score",
    "time_based_windows",
    "tokenize",
    "train_test_split",
]
