"""Naive Bayes classifiers (Table 4 comparison; NLP-baseline option)."""

from __future__ import annotations

import numpy as np

from .base import Classifier, check_Xy, check_matrix

__all__ = ["GaussianNB", "MultinomialNB"]


class GaussianNB(Classifier):
    """Gaussian naive Bayes with variance smoothing."""

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        if var_smoothing <= 0:
            raise ValueError("var_smoothing must be positive")
        self.var_smoothing = var_smoothing

    def fit(self, X, y) -> "GaussianNB":
        X, y = check_Xy(X, y)
        encoded = self._encode_labels(y)
        n_classes = len(self.classes_)
        self.n_features_ = X.shape[1]
        self.theta_ = np.zeros((n_classes, self.n_features_))
        self.var_ = np.zeros((n_classes, self.n_features_))
        self.class_prior_ = np.zeros(n_classes)
        for c in range(n_classes):
            rows = X[encoded == c]
            self.theta_[c] = rows.mean(axis=0)
            self.var_[c] = rows.var(axis=0)
            self.class_prior_[c] = len(rows) / len(encoded)
        self.var_ += self.var_smoothing * max(X.var(axis=0).max(), 1e-12)
        self._fitted = True
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_matrix(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        log_proba = np.zeros((X.shape[0], len(self.classes_)))
        for c in range(len(self.classes_)):
            log_like = -0.5 * np.sum(
                np.log(2.0 * np.pi * self.var_[c])
                + (X - self.theta_[c]) ** 2 / self.var_[c],
                axis=1,
            )
            log_proba[:, c] = np.log(self.class_prior_[c]) + log_like
        log_proba -= log_proba.max(axis=1, keepdims=True)
        proba = np.exp(log_proba)
        proba /= proba.sum(axis=1, keepdims=True)
        return proba


class MultinomialNB(Classifier):
    """Multinomial naive Bayes over count features (bag of words)."""

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha <= 0:
            raise ValueError("alpha (Laplace smoothing) must be positive")
        self.alpha = alpha

    def fit(self, X, y) -> "MultinomialNB":
        X, y = check_Xy(X, y)
        if np.any(X < 0):
            raise ValueError("MultinomialNB requires non-negative features")
        encoded = self._encode_labels(y)
        n_classes = len(self.classes_)
        self.n_features_ = X.shape[1]
        self.feature_log_prob_ = np.zeros((n_classes, self.n_features_))
        self.class_log_prior_ = np.zeros(n_classes)
        for c in range(n_classes):
            rows = X[encoded == c]
            counts = rows.sum(axis=0) + self.alpha
            self.feature_log_prob_[c] = np.log(counts / counts.sum())
            self.class_log_prior_[c] = np.log(len(rows) / len(encoded))
        self._fitted = True
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_matrix(X)
        log_proba = X @ self.feature_log_prob_.T + self.class_log_prior_
        log_proba -= log_proba.max(axis=1, keepdims=True)
        proba = np.exp(log_proba)
        proba /= proba.sum(axis=1, keepdims=True)
        return proba
