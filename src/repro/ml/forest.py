"""Random forest classifier — the Scout's main supervised model (§5.2.1).

"RFs are a natural first choice: they are resilient to over-fitting and
offer explain-ability."  Explainability comes from aggregating per-tree
feature contributions (Palczewska et al. [57]) — see
:meth:`RandomForestClassifier.feature_contributions`.

Training draws every tree's rng seed and bootstrap sample *up front*
from the forest rng, so the per-tree fits are independent pure
functions of ``(params, X, y, seed, bootstrap_idx)``.  That makes
``n_jobs > 1`` (process-pool fitting) bit-identical to the serial path:
parallelism changes wall-clock, never predictions (§7 reproducibility).
"""

from __future__ import annotations

import numpy as np

from .base import Classifier, as_rng, check_Xy, check_matrix, resolve_n_jobs
from .tree import _NO_FEATURE, DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]

_SEED_BOUND = 2**63


class _EnsembleArrays:
    """Every tree's flat arrays concatenated for one merged traversal.

    Per-tree batch prediction spends its time in numpy-call overhead
    (roughly ``depth`` tiny calls per tree).  Concatenating the node
    arrays of all trees — child indices re-based by each tree's node
    offset, leaf distributions scattered into forest class columns —
    turns the whole forest into one big flat tree whose (tree, row)
    lanes advance together in a single level-synchronous loop.
    """

    __slots__ = ("feature", "threshold", "left", "right", "distribution", "roots")

    def __init__(self, trees: list[DecisionTreeClassifier], n_classes: int) -> None:
        flats = [tree.flat_ for tree in trees]
        sizes = np.array([flat.n_nodes for flat in flats], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(sizes[:-1])])
        self.roots = offsets
        self.feature = np.concatenate([flat.feature for flat in flats])
        self.threshold = np.concatenate([flat.threshold for flat in flats])
        # Leaves keep their -1 child markers; they are never dereferenced
        # because lanes leave the active set on reaching a leaf.
        self.left = np.concatenate(
            [flat.children_left.astype(np.int64) + off
             for flat, off in zip(flats, offsets)]
        )
        self.right = np.concatenate(
            [flat.children_right.astype(np.int64) + off
             for flat, off in zip(flats, offsets)]
        )
        distribution = np.zeros((int(sizes.sum()), n_classes))
        for tree, flat, off in zip(trees, flats, offsets):
            cols = tree.classes_.astype(int)
            distribution[off : off + flat.n_nodes][:, cols] = flat.distribution
        self.distribution = distribution

    def sum_proba(self, X: np.ndarray) -> np.ndarray:
        """Sum of per-tree class distributions for every row of ``X``."""
        n_rows = X.shape[0]
        n_trees = len(self.roots)
        idx = np.repeat(self.roots, n_rows)
        rows = np.tile(np.arange(n_rows), n_trees)
        feature = self.feature
        active = np.flatnonzero(feature[idx] != _NO_FEATURE)
        while active.size:
            cur = idx[active]
            go_left = X[rows[active], feature[cur]] <= self.threshold[cur]
            nxt = np.where(go_left, self.left[cur], self.right[cur])
            idx[active] = nxt
            active = active[feature[nxt] != _NO_FEATURE]
        leaves = self.distribution[idx]
        return leaves.reshape(n_trees, n_rows, -1).sum(axis=0)


def _fit_tree_shard(
    params: dict,
    X: np.ndarray,
    y: np.ndarray,
    sample_weight: np.ndarray | None,
    seeds: np.ndarray,
    bootstrap_indices: np.ndarray | None,
) -> list[DecisionTreeClassifier]:
    """Fit a shard of trees serially (runs in a worker process).

    Module-level so it pickles for ``ProcessPoolExecutor``; also the
    serial path, so n_jobs=1 and n_jobs>1 execute identical code.
    """
    trees: list[DecisionTreeClassifier] = []
    for i, seed in enumerate(seeds):
        tree = DecisionTreeClassifier(rng=np.random.default_rng(int(seed)), **params)
        if bootstrap_indices is not None:
            idx = bootstrap_indices[i]
            tree.fit(X[idx], y[idx])
        else:
            tree.fit(X, y, sample_weight=sample_weight)
        trees.append(tree)
    return trees


class RandomForestClassifier(Classifier):
    """Bagged ensemble of CART trees with feature subsampling.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf:
        Passed to each :class:`DecisionTreeClassifier`.
    max_features:
        Features considered per split (default ``"sqrt"``).
    bootstrap:
        Sample rows with replacement per tree (bagging).
    rng:
        Seed or Generator for reproducibility.
    n_jobs:
        Worker processes for tree fitting: 1 (default) fits serially in
        process, ``None``/-1 uses all cores.  Results are bit-identical
        regardless of the value.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: str | int | float | None = "sqrt",
        bootstrap: bool = True,
        rng: int | np.random.Generator | None = None,
        n_jobs: int | None = 1,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.n_jobs = n_jobs
        self._rng = as_rng(rng)

    def _tree_params(self) -> dict:
        return {
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
        }

    def fit(self, X, y, sample_weight=None) -> "RandomForestClassifier":
        X, y = check_Xy(X, y)
        encoded = self._encode_labels(y)
        n = len(encoded)
        if sample_weight is None:
            sample_weight = np.ones(n)
        else:
            sample_weight = np.asarray(sample_weight, dtype=float)
            if sample_weight.shape != encoded.shape:
                raise ValueError("sample_weight length must match y")
        self.n_features_ = X.shape[1]
        # Bootstrap probabilities follow the sample weights, so §8's
        # up-weighting of previously mis-classified incidents also biases
        # which rows each tree sees.
        weight_sum = sample_weight.sum()
        probabilities = (
            sample_weight / weight_sum if weight_sum > 0 else None
        )
        # Pre-draw every tree's seed and bootstrap sample from the
        # forest rng in a fixed order.  After this point tree fits are
        # independent of each other, so serial and parallel execution
        # consume the rng identically and produce the same forest.
        seeds = self._rng.integers(_SEED_BOUND, size=self.n_estimators)
        if self.bootstrap:
            bootstrap_indices = np.vstack(
                [
                    self._rng.choice(n, size=n, replace=True, p=probabilities)
                    for _ in range(self.n_estimators)
                ]
            )
        else:
            bootstrap_indices = None

        n_workers = resolve_n_jobs(self.n_jobs)
        params = self._tree_params()
        if n_workers == 1 or self.n_estimators == 1:
            self.trees_ = _fit_tree_shard(
                params, X, encoded, sample_weight, seeds, bootstrap_indices
            )
        else:
            self.trees_ = self._fit_parallel(
                params, X, encoded, sample_weight, seeds, bootstrap_indices,
                n_workers,
            )

        importances = np.zeros(self.n_features_)
        for tree in self.trees_:
            # Trees trained on bootstrap samples may have seen only one
            # class; their importances are all-zero and harmless.
            importances += tree.feature_importances_
        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else importances
        )
        self._fitted = True
        return self

    def _fit_parallel(
        self,
        params: dict,
        X: np.ndarray,
        encoded: np.ndarray,
        sample_weight: np.ndarray,
        seeds: np.ndarray,
        bootstrap_indices: np.ndarray | None,
        n_workers: int,
    ) -> list[DecisionTreeClassifier]:
        """Fit tree shards in a process pool, preserving tree order."""
        from concurrent.futures import ProcessPoolExecutor

        n_shards = min(n_workers, self.n_estimators)
        shards = np.array_split(np.arange(self.n_estimators), n_shards)
        try:
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                futures = [
                    pool.submit(
                        _fit_tree_shard,
                        params,
                        X,
                        encoded,
                        sample_weight,
                        seeds[shard],
                        None
                        if bootstrap_indices is None
                        else bootstrap_indices[shard],
                    )
                    for shard in shards
                ]
                results = [f.result() for f in futures]
        except (OSError, PermissionError):
            # Sandboxes without process spawning fall back to serial;
            # identical results either way.
            return _fit_tree_shard(
                params, X, encoded, sample_weight, seeds, bootstrap_indices
            )
        return [tree for shard_trees in results for tree in shard_trees]

    def _merged(self) -> _EnsembleArrays:
        """The concatenated flat-tree ensemble, built lazily and cached.

        Lazy so forests unpickled from bundles saved before this
        attribute existed rebuild it transparently on first use.
        """
        ensemble = getattr(self, "_ensemble_", None)
        if ensemble is None:
            ensemble = _EnsembleArrays(self.trees_, len(self.classes_))
            self._ensemble_ = ensemble
        return ensemble

    def predict_proba(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_matrix(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        # Trees are fit on integer-encoded labels, so each tree's
        # classes_ holds forest class indices; the merged ensemble has
        # them pre-scattered into forest columns.
        return self._merged().sum_proba(X) / self.n_estimators

    def feature_contributions(self, row) -> np.ndarray:
        """Average per-feature contribution across trees for one sample.

        Shape ``(n_features, n_classes)``; the contribution of feature
        ``f`` toward class ``c`` is positive when tests on ``f`` pushed
        the prediction toward ``c`` along the decision paths.
        """
        self._require_fitted()
        row = np.asarray(row, dtype=float).ravel()
        if row.shape[0] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {row.shape[0]}"
            )
        total = np.zeros((self.n_features_, len(self.classes_)))
        for tree in self.trees_:
            cols = tree.classes_.astype(int)
            total[:, cols] += tree.decision_contributions(row)
        return total / self.n_estimators
