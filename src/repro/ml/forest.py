"""Random forest classifier — the Scout's main supervised model (§5.2.1).

"RFs are a natural first choice: they are resilient to over-fitting and
offer explain-ability."  Explainability comes from aggregating per-tree
feature contributions (Palczewska et al. [57]) — see
:meth:`RandomForestClassifier.feature_contributions`.
"""

from __future__ import annotations

import numpy as np

from .base import Classifier, as_rng, check_Xy, check_matrix
from .tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier(Classifier):
    """Bagged ensemble of CART trees with feature subsampling.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf:
        Passed to each :class:`DecisionTreeClassifier`.
    max_features:
        Features considered per split (default ``"sqrt"``).
    bootstrap:
        Sample rows with replacement per tree (bagging).
    rng:
        Seed or Generator for reproducibility.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: str | int | float | None = "sqrt",
        bootstrap: bool = True,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self._rng = as_rng(rng)

    def fit(self, X, y, sample_weight=None) -> "RandomForestClassifier":
        X, y = check_Xy(X, y)
        encoded = self._encode_labels(y)
        n = len(encoded)
        if sample_weight is None:
            sample_weight = np.ones(n)
        else:
            sample_weight = np.asarray(sample_weight, dtype=float)
            if sample_weight.shape != encoded.shape:
                raise ValueError("sample_weight length must match y")
        self.n_features_ = X.shape[1]
        self.trees_: list[DecisionTreeClassifier] = []
        # Bootstrap probabilities follow the sample weights, so §8's
        # up-weighting of previously mis-classified incidents also biases
        # which rows each tree sees.
        weight_sum = sample_weight.sum()
        probabilities = (
            sample_weight / weight_sum if weight_sum > 0 else None
        )
        for _ in range(self.n_estimators):
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=self._rng,
            )
            if self.bootstrap:
                idx = self._rng.choice(n, size=n, replace=True, p=probabilities)
                tree.fit(X[idx], encoded[idx])
            else:
                tree.fit(X, encoded, sample_weight=sample_weight)
            self.trees_.append(tree)
        importances = np.zeros(self.n_features_)
        for tree in self.trees_:
            # Trees trained on bootstrap samples may have seen only one
            # class; their importances are all-zero and harmless.
            importances += tree.feature_importances_
        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else importances
        )
        self._fitted = True
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_matrix(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        proba = np.zeros((X.shape[0], len(self.classes_)))
        for tree in self.trees_:
            tree_proba = tree.predict_proba(X)
            # Map tree-local class indices back to forest classes: trees
            # are fit on integer-encoded labels, so tree.classes_ holds
            # forest class *indices*.
            for local, forest_idx in enumerate(tree.classes_):
                proba[:, int(forest_idx)] += tree_proba[:, local]
        proba /= self.n_estimators
        return proba

    def feature_contributions(self, row) -> np.ndarray:
        """Average per-feature contribution across trees for one sample.

        Shape ``(n_features, n_classes)``; the contribution of feature
        ``f`` toward class ``c`` is positive when tests on ``f`` pushed
        the prediction toward ``c`` along the decision paths.
        """
        self._require_fitted()
        row = np.asarray(row, dtype=float).ravel()
        if row.shape[0] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {row.shape[0]}"
            )
        total = np.zeros((self.n_features_, len(self.classes_)))
        for tree in self.trees_:
            local = tree.decision_contributions(row)
            for local_idx, forest_idx in enumerate(tree.classes_):
                total[:, int(forest_idx)] += local[:, local_idx]
        return total / self.n_estimators
