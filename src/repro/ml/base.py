"""Base classes and utilities shared by all from-scratch ML models.

scikit-learn is not available in this environment, so the :mod:`repro.ml`
package re-implements every model the paper references on top of numpy.
The estimator protocol intentionally mirrors sklearn's ``fit`` /
``predict`` / ``predict_proba`` so readers familiar with that API can
follow along.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "Estimator",
    "Classifier",
    "NotFittedError",
    "check_matrix",
    "check_Xy",
    "as_rng",
    "resolve_n_jobs",
]


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Resolve an ``n_jobs`` knob to a concrete worker count.

    ``None`` or any value < 1 (sklearn's ``-1`` convention) means "all
    cores"; otherwise the value is used as-is.
    """
    if n_jobs is None or n_jobs < 1:
        return max(1, os.cpu_count() or 1)
    return int(n_jobs)


class NotFittedError(RuntimeError):
    """Raised when ``predict`` is called before ``fit``."""


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a numpy Generator from a seed, Generator, or None."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def check_matrix(X) -> np.ndarray:
    """Coerce ``X`` to a 2-D float array, validating its shape."""
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(1, -1)
    if X.ndim != 2:
        raise ValueError(f"expected a 2-D feature matrix, got shape {X.shape}")
    if X.shape[0] == 0:
        raise ValueError("feature matrix has no rows")
    return X


def check_Xy(X, y) -> tuple[np.ndarray, np.ndarray]:
    """Coerce and validate a training pair ``(X, y)``."""
    X = check_matrix(X)
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"expected a 1-D label vector, got shape {y.shape}")
    if len(y) != X.shape[0]:
        raise ValueError(
            f"X has {X.shape[0]} rows but y has {len(y)} labels"
        )
    return X, y


class Estimator:
    """Minimal estimator protocol: ``fit`` returns ``self``."""

    _fitted = False

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before use"
            )


class Classifier(Estimator):
    """A classifier over arbitrary (hashable) class labels.

    Subclasses must set ``classes_`` during ``fit`` and implement
    ``predict_proba``; ``predict`` is derived from it.
    """

    classes_: np.ndarray

    def fit(self, X, y):  # pragma: no cover - abstract
        raise NotImplementedError

    def predict_proba(self, X) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def _encode_labels(self, y: np.ndarray) -> np.ndarray:
        """Store ``classes_`` and return integer-encoded labels."""
        self.classes_, encoded = np.unique(y, return_inverse=True)
        return encoded

    def score(self, X, y) -> float:
        """Mean accuracy on ``(X, y)``."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))
