"""Dataset-splitting helpers reproducing the paper's evaluation protocol.

§7 of the paper: "We randomly split the data into a training and a test
set. To avoid class imbalance, we only use 35% of the non-PhyNet
incidents in the training set (the rest are in the test set). We split
and use half the PhyNet incidents for training."  Time-based splits are
used for the retraining experiments (§7.3).
"""

from __future__ import annotations

import numpy as np

from .base import as_rng

__all__ = [
    "train_test_split",
    "imbalance_aware_split",
    "time_based_windows",
]


def train_test_split(
    n: int,
    test_fraction: float = 0.5,
    rng: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Random index split into (train_idx, test_idx)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = as_rng(rng)
    order = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    return np.sort(order[n_test:]), np.sort(order[:n_test])


def imbalance_aware_split(
    labels,
    positive=1,
    positive_train_fraction: float = 0.5,
    negative_train_fraction: float = 0.35,
    rng: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """The paper's §7 split.

    Half of the positive (PhyNet) incidents and 35% of the negative
    incidents go to training; everything else goes to the test set.
    Returns ``(train_idx, test_idx)`` as sorted index arrays.
    """
    labels = np.asarray(labels)
    rng = as_rng(rng)
    train_parts = []
    test_parts = []
    for value, fraction in (
        (positive, positive_train_fraction),
        (None, negative_train_fraction),
    ):
        if value is None:
            idx = np.flatnonzero(labels != positive)
        else:
            idx = np.flatnonzero(labels == positive)
        if idx.size == 0:
            continue
        order = rng.permutation(idx)
        n_train = int(round(len(order) * fraction))
        train_parts.append(order[:n_train])
        test_parts.append(order[n_train:])
    train_idx = np.sort(np.concatenate(train_parts)) if train_parts else np.array([], int)
    test_idx = np.sort(np.concatenate(test_parts)) if test_parts else np.array([], int)
    return train_idx, test_idx


def time_based_windows(
    timestamps,
    retrain_interval: float,
    history_window: float | None = None,
    warmup: float | None = None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Rolling (train_idx, eval_idx) windows for retraining experiments.

    The timeline is cut at multiples of ``retrain_interval`` after an
    initial ``warmup`` period (defaults to one interval).  For each cut
    point ``c``, the training set is every incident in
    ``[c - history_window, c)`` (all history when ``history_window`` is
    None — the "growing" variant of Figure 10a) and the evaluation set
    is ``[c, c + retrain_interval)``.
    """
    timestamps = np.asarray(timestamps, dtype=float)
    if timestamps.size == 0:
        return []
    if retrain_interval <= 0:
        raise ValueError("retrain_interval must be positive")
    start = timestamps.min()
    end = timestamps.max()
    if warmup is None:
        warmup = retrain_interval
    windows: list[tuple[np.ndarray, np.ndarray]] = []
    cut = start + warmup
    while cut <= end:
        if history_window is None:
            train_mask = timestamps < cut
        else:
            train_mask = (timestamps >= cut - history_window) & (timestamps < cut)
        eval_mask = (timestamps >= cut) & (timestamps < cut + retrain_interval)
        train_idx = np.flatnonzero(train_mask)
        eval_idx = np.flatnonzero(eval_mask)
        if train_idx.size and eval_idx.size:
            windows.append((train_idx, eval_idx))
        cut += retrain_interval
    return windows
