"""K-nearest-neighbors classifier (Table 4 comparison model)."""

from __future__ import annotations

import numpy as np

from .base import Classifier, check_Xy, check_matrix

__all__ = ["KNeighborsClassifier"]


class KNeighborsClassifier(Classifier):
    """Majority vote over the ``k`` nearest training samples.

    ``weights`` may be ``"uniform"`` or ``"distance"`` (inverse-distance
    voting, with exact matches dominating).
    """

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform") -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if weights not in ("uniform", "distance"):
            raise ValueError(f"unknown weights: {weights!r}")
        self.n_neighbors = n_neighbors
        self.weights = weights

    def fit(self, X, y) -> "KNeighborsClassifier":
        X, y = check_Xy(X, y)
        self._X = X
        self._y = self._encode_labels(y)
        self.n_features_ = X.shape[1]
        self._fitted = True
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_matrix(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        k = min(self.n_neighbors, len(self._X))
        n_classes = len(self.classes_)
        proba = np.zeros((X.shape[0], n_classes))
        # Chunk queries so distance matrices stay modest in memory.
        chunk = max(1, 2_000_000 // max(1, len(self._X)))
        for start in range(0, X.shape[0], chunk):
            block = X[start : start + chunk]
            d2 = (
                np.sum(block**2, axis=1)[:, None]
                - 2.0 * block @ self._X.T
                + np.sum(self._X**2, axis=1)[None, :]
            )
            np.maximum(d2, 0.0, out=d2)
            neighbor_idx = np.argpartition(d2, k - 1, axis=1)[:, :k]
            for i, neighbors in enumerate(neighbor_idx):
                labels = self._y[neighbors]
                if self.weights == "uniform":
                    votes = np.bincount(labels, minlength=n_classes).astype(float)
                else:
                    dist = np.sqrt(d2[i, neighbors])
                    w = 1.0 / np.maximum(dist, 1e-12)
                    votes = np.bincount(labels, weights=w, minlength=n_classes)
                proba[start + i] = votes / votes.sum()
        return proba
