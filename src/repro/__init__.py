"""Scouts: domain-customized incident routing - SIGCOMM 2020 reproduction.

The public API re-exports the pieces a downstream user needs:

* ``repro.config`` - the Scout configuration DSL (``parse_config``,
  ``phynet_config``);
* ``repro.core`` - the Scout framework (``ScoutFramework`` trains a
  ``Scout`` that predicts/explains per incident);
* ``repro.simulation`` - the synthetic cloud (``CloudSimulation``
  generates incidents with monitoring signatures), the legacy-routing
  baseline, the NLP recommender, and the Scout Master;
* ``repro.ml`` - the from-scratch model zoo;
* ``repro.analysis`` - gain/overhead metrics and reporting helpers.

Quickstart::

    from repro import CloudSimulation, ScoutFramework, phynet_config

    sim = CloudSimulation()
    incidents = sim.generate(500)
    framework = ScoutFramework(phynet_config(), sim.topology, sim.store)
    data = framework.dataset(incidents).usable()
    scout = framework.train(data)
    print(scout.predict(incidents[0]).report(scout.team))
"""

from .config import PHYNET_CONFIG_TEXT, ScoutConfig, parse_config, phynet_config
from .core import (
    EvaluationReport,
    Scout,
    ScoutDataset,
    ScoutFramework,
    ScoutPrediction,
    TrainingOptions,
)
from .incidents import Incident, IncidentSource, IncidentStore, Severity
from .registry import ModelRegistry
from .simulation import (
    AbstractScout,
    CloudSimulation,
    NlpRouter,
    ScoutMaster,
    SimulationConfig,
    simulate_master_gain,
)

__version__ = "1.0.0"

__all__ = [
    "AbstractScout",
    "CloudSimulation",
    "EvaluationReport",
    "Incident",
    "IncidentSource",
    "IncidentStore",
    "ModelRegistry",
    "NlpRouter",
    "PHYNET_CONFIG_TEXT",
    "Scout",
    "ScoutConfig",
    "ScoutDataset",
    "ScoutFramework",
    "ScoutMaster",
    "ScoutPrediction",
    "Severity",
    "SimulationConfig",
    "TrainingOptions",
    "parse_config",
    "phynet_config",
    "simulate_master_gain",
    "__version__",
]
