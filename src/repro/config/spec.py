"""Scout configuration objects (§5.1, §5.3).

A :class:`ScoutConfig` is everything a team hands the Scout framework:

* how to extract its component types from incident text (regexes);
* which monitoring datasets it owns, with their data types, component
  associations and optional class tags;
* exclusion rules for out-of-scope incidents/components;
* the look-back window ``T``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..datacenter.components import ComponentKind
from ..monitoring.base import DataKind

__all__ = ["MonitoringRef", "ExcludeRule", "ScoutConfig"]

_KIND_ALIASES = {
    "vm": ComponentKind.VM,
    "server": ComponentKind.SERVER,
    "switch": ComponentKind.SWITCH,
    "cluster": ComponentKind.CLUSTER,
    "dc": ComponentKind.DC,
}


def parse_kind(name: str) -> ComponentKind:
    try:
        return _KIND_ALIASES[name.lower()]
    except KeyError:
        raise ValueError(f"unknown component kind: {name!r}") from None


@dataclass(frozen=True)
class MonitoringRef:
    """One ``CREATE_MONITORING`` registration.

    ``locator`` names the dataset inside the provider's monitoring
    plane (our :class:`~repro.monitoring.store.MonitoringStore`);
    ``tags`` records the component associations the operator declared;
    ``class_tag`` marks datasets whose features may be merged (§5.1).
    """

    name: str
    locator: str
    data_type: DataKind
    tags: dict[str, str] = field(default_factory=dict)
    class_tag: str | None = None

    def __post_init__(self) -> None:
        if not self.name or not self.locator:
            raise ValueError("monitoring refs need a name and a locator")


@dataclass(frozen=True)
class ExcludeRule:
    """One ``EXCLUDE`` command (§5.3).

    ``field`` is ``"TITLE"``, ``"BODY"`` or a component-kind name; the
    rule fires when ``pattern`` matches the corresponding text or any
    extracted component name of that kind.
    """

    field: str
    pattern: str

    def __post_init__(self) -> None:
        if self.field.upper() not in ("TITLE", "BODY") and self.field.lower() not in _KIND_ALIASES:
            raise ValueError(f"bad EXCLUDE field: {self.field!r}")
        re.compile(self.pattern)  # fail fast on bad regexes

    def matches(self, title: str, body: str, components) -> bool:
        regex = re.compile(self.pattern)
        key = self.field.upper()
        if key == "TITLE":
            return regex.search(title) is not None
        if key == "BODY":
            return regex.search(body) is not None
        kind = parse_kind(self.field)
        return any(
            component.kind is kind and regex.search(component.name)
            for component in components
        )


@dataclass
class ScoutConfig:
    """The full configuration of one team's Scout."""

    team: str
    component_patterns: dict[ComponentKind, str]
    monitoring: list[MonitoringRef]
    excludes: list[ExcludeRule] = field(default_factory=list)
    lookback: float = 7200.0          # T, seconds (§7 uses two hours)
    # Reference window used to normalize time series against recent
    # healthy history (multiple of lookback).
    reference_multiple: float = 3.0
    # Containers (cluster/DC) pool member signals; cap the member count
    # so DC-wide features stay tractable.
    max_members_per_container: int = 40

    def __post_init__(self) -> None:
        if not self.team:
            raise ValueError("config needs a team name")
        if not self.component_patterns:
            raise ValueError("config needs at least one component pattern")
        for pattern in self.component_patterns.values():
            re.compile(pattern)
        if self.lookback <= 0:
            raise ValueError("lookback must be positive")
        names = [ref.name for ref in self.monitoring]
        if len(set(names)) != len(names):
            raise ValueError("duplicate monitoring names")

    @property
    def kinds(self) -> list[ComponentKind]:
        """Component kinds in declaration order."""
        return list(self.component_patterns)

    def refs_with_class(self, class_tag: str) -> list[MonitoringRef]:
        return [ref for ref in self.monitoring if ref.class_tag == class_tag]
