"""Starter Scout configurations for the non-PhyNet teams.

"These same techniques can be used to develop new 'starter' Scouts as
well" (§1).  Each config follows the same DSL as PhyNet's: extraction
regexes for the components the team reasons about, its own monitoring
registrations, and the look-back window.  The framework turns each of
these into a working Scout without further team effort.
"""

from __future__ import annotations

from .parser import parse_config
from .spec import ScoutConfig

__all__ = [
    "storage_config",
    "slb_config",
    "dns_config",
    "database_config",
    "team_scout_configs",
]

_COMMON_PATTERNS = r"""
let VM      = "\bvm-\d+\.c\d+\.dc\d+\b";
let server  = "\bsrv-\d+\.c\d+\.dc\d+\b";
let cluster = "(?<![.\w-])c\d+\.dc\d+\b";
let DC      = "(?<![.\w-])dc\d+\b";
"""

STORAGE_CONFIG_TEXT = f"""
TEAM Storage;
{_COMMON_PATTERNS}
MONITORING io_errors = CREATE_MONITORING("disk_io_errors",
    {{server=all}}, EVENT);
MONITORING latency   = CREATE_MONITORING("storage_latency",
    {{server=all}}, TIME_SERIES);
SET lookback = 7200;
"""

SLB_CONFIG_TEXT = f"""
TEAM SLB;
{_COMMON_PATTERNS}
MONITORING probes = CREATE_MONITORING("vip_probe_failures",
    {{cluster=all}}, EVENT);
SET lookback = 7200;
"""

DNS_CONFIG_TEXT = f"""
TEAM DNS;
{_COMMON_PATTERNS}
MONITORING timeouts = CREATE_MONITORING("dns_query_timeouts",
    {{cluster=all}}, EVENT);
SET lookback = 7200;
"""

DATABASE_CONFIG_TEXT = f"""
TEAM Database;
{_COMMON_PATTERNS}
MONITORING query_latency = CREATE_MONITORING("db_query_latency",
    {{server=all}}, TIME_SERIES);
SET lookback = 7200;
"""


def storage_config() -> ScoutConfig:
    return parse_config(STORAGE_CONFIG_TEXT)


def slb_config() -> ScoutConfig:
    return parse_config(SLB_CONFIG_TEXT)


def dns_config() -> ScoutConfig:
    return parse_config(DNS_CONFIG_TEXT)


def database_config() -> ScoutConfig:
    return parse_config(DATABASE_CONFIG_TEXT)


def team_scout_configs() -> dict[str, ScoutConfig]:
    """All non-PhyNet starter configs, keyed by team name."""
    configs = [storage_config(), slb_config(), dns_config(), database_config()]
    return {config.team: config for config in configs}
