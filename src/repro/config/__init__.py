"""Scout configuration DSL: spec objects, parser, renderer, PhyNet's config."""

from .parser import ConfigSyntaxError, parse_config, parse_statements
from .phynet import PHYNET_CONFIG_TEXT, phynet_config
from .render import render_config
from .spec import ExcludeRule, MonitoringRef, ScoutConfig
from .teams import (
    database_config,
    dns_config,
    slb_config,
    storage_config,
    team_scout_configs,
)

__all__ = [
    "ConfigSyntaxError",
    "ExcludeRule",
    "MonitoringRef",
    "PHYNET_CONFIG_TEXT",
    "ScoutConfig",
    "database_config",
    "dns_config",
    "parse_config",
    "parse_statements",
    "phynet_config",
    "render_config",
    "slb_config",
    "storage_config",
    "team_scout_configs",
]
