"""Render a :class:`ScoutConfig` back to canonical DSL text.

``render_config`` is the inverse of :func:`~repro.config.parser.parse_config`:
``parse_config(render_config(cfg))`` reproduces ``cfg`` exactly for any
config whose patterns are representable in the DSL's escape scheme.

The one caveat is quoting.  The DSL escapes a double quote as ``\\"``
and keeps every other backslash literal, so a pattern containing the
two-character sequence ``\\"`` (a regex-escaped quote) cannot be
written verbatim — the parser would read it as an escaped quote.  The
renderer normalizes such sequences to a bare ``"`` first, which is the
same regular expression (quotes are not special in regex syntax), then
escapes.  Patterns containing a raw newline are rejected: the DSL's
comment stripper is line-based and cannot carry them through a
round-trip.
"""

from __future__ import annotations

from ..datacenter.components import ComponentKind
from .spec import ScoutConfig

__all__ = ["render_config"]

# Canonical DSL spelling per component kind (matches the paper's
# examples: upper-case acronyms, lower-case words).
KIND_SPELLING = {
    ComponentKind.VM: "VM",
    ComponentKind.SERVER: "server",
    ComponentKind.SWITCH: "switch",
    ComponentKind.CLUSTER: "cluster",
    ComponentKind.DC: "DC",
}


def _quote(value: str) -> str:
    """Render a string literal in the DSL's escape scheme."""
    if "\n" in value or "\r" in value:
        raise ValueError(
            f"cannot render a pattern containing a raw newline: {value!r}"
        )
    # Normalize regex-escaped quotes to bare quotes (same regex), then
    # escape every quote for the DSL.
    normalized = value.replace('\\"', '"')
    return '"' + normalized.replace('"', '\\"') + '"'


def _word(value: str, what: str) -> str:
    """Validate a bare-word token (name, tag key/value, class tag)."""
    if not value or not all(ch.isalnum() or ch == "_" for ch in value):
        raise ValueError(f"cannot render {what} {value!r} as a DSL bare word")
    return value


def _format_number(value: float) -> str:
    """A ``SET``-compatible number literal (no sign, no exponent)."""
    if value == int(value) and abs(value) < 1e16:
        text = str(int(value))
    else:
        text = repr(float(value))
    if any(ch not in "0123456789." for ch in text):
        raise ValueError(f"cannot render option value {value!r} in the DSL")
    return text


def render_config(config: ScoutConfig) -> str:
    """Serialize ``config`` to canonical DSL text.

    Statements come out in a fixed order (TEAM, lets, MONITORING,
    EXCLUDE, SET) with declaration order preserved inside each block,
    so rendering is deterministic and the parsed result round-trips.
    """
    lines: list[str] = [f"TEAM {config.team};", ""]
    for kind, pattern in config.component_patterns.items():
        lines.append(f"let {KIND_SPELLING[kind]} = {_quote(pattern)};")
    if config.monitoring:
        lines.append("")
    for ref in config.monitoring:
        args = [_quote(ref.locator)]
        if ref.tags:
            pairs = ", ".join(
                f"{_word(k, 'tag key')}={_word(v, 'tag value')}"
                for k, v in ref.tags.items()
            )
            args.append("{" + pairs + "}")
        args.append(ref.data_type.value)
        if ref.class_tag is not None:
            args.append(_word(ref.class_tag, "class tag"))
        name = _word(ref.name, "monitoring name")
        lines.append(
            f"MONITORING {name} = CREATE_MONITORING({', '.join(args)});"
        )
    if config.excludes:
        lines.append("")
    for rule in config.excludes:
        field = rule.field
        lines.append(f"EXCLUDE {field} = {_quote(rule.pattern)};")
    lines.append("")
    lines.append(f"SET lookback = {_format_number(config.lookback)};")
    lines.append(
        f"SET reference_multiple = {_format_number(config.reference_multiple)};"
    )
    lines.append(
        "SET max_members_per_container = "
        f"{_format_number(config.max_members_per_container)};"
    )
    return "\n".join(lines) + "\n"
