"""Parser for the Scout configuration DSL of §5.1/§5.3.

The surface syntax follows the paper's examples::

    # component extraction
    let VM = "vm-\\d+\\.c\\d+\\.dc\\d+";
    let switch = "sw-(?:tor|agg|spine)\\d+\\.c\\d+\\.dc\\d+";

    # monitoring registration
    MONITORING dataset_1 = CREATE_MONITORING(
        "ping_statistics", {cluster=Y, server=Z}, TIME_SERIES, LATENCY);

    # scoping
    EXCLUDE switch = "sw-tor9.*";
    EXCLUDE TITLE = "decommission";

    # options
    SET lookback = 7200;

Strings are double-quoted; ``\\"`` escapes a quote and ``\\\\`` escapes
a backslash (so a pattern may end in a backslash).  ``#`` starts a
comment.  Statements end with ``;``.

The parser is layered: :func:`parse_statements` tokenizes text into
statement objects (``LetStmt``, ``MonitoringStmt``, ...) carrying their
starting line numbers, and :func:`parse_config` assembles them into a
validated :class:`ScoutConfig`.  The statement layer has a *lenient*
mode (pass an ``errors`` list) used by ``repro.lint`` so one malformed
statement surfaces as a finding instead of hiding every later one.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..monitoring.base import DataKind
from .spec import ExcludeRule, MonitoringRef, ScoutConfig, parse_kind

__all__ = [
    "parse_config",
    "parse_statements",
    "ConfigSyntaxError",
    "LetStmt",
    "MonitoringStmt",
    "ExcludeStmt",
    "SetStmt",
    "TeamStmt",
    "KNOWN_OPTIONS",
]

KNOWN_OPTIONS = ("lookback", "reference_multiple", "max_members_per_container")


class ConfigSyntaxError(ValueError):
    """Raised on malformed Scout configuration text."""

    def __init__(self, message: str, line: int | None = None) -> None:
        prefix = f"line {line}: " if line is not None else ""
        super().__init__(prefix + message)
        self.line = line


@dataclass(frozen=True)
class LetStmt:
    """``let <kind> = "<regex>";`` — kind name kept raw for the linter."""

    kind_name: str
    pattern: str
    line: int


@dataclass(frozen=True)
class MonitoringStmt:
    """``MONITORING <name> = CREATE_MONITORING(...);``"""

    name: str
    locator: str
    tags: tuple[tuple[str, str], ...]
    data_type: str
    class_tag: str | None
    line: int


@dataclass(frozen=True)
class ExcludeStmt:
    """``EXCLUDE <field> = "<regex>";``"""

    field: str
    pattern: str
    line: int


@dataclass(frozen=True)
class SetStmt:
    """``SET <key> = <value>;`` — value kept raw for the linter."""

    key: str
    value: str
    line: int


@dataclass(frozen=True)
class TeamStmt:
    """``TEAM <name>;``"""

    name: str
    line: int


Statement = LetStmt | MonitoringStmt | ExcludeStmt | SetStmt | TeamStmt


_STRING = r'"((?:[^"\\]|\\.)*)"'
_LET = re.compile(rf"^let\s+(\w+)\s*=\s*{_STRING}$", re.DOTALL)
_MONITORING = re.compile(
    rf"^MONITORING\s+(\w+)\s*=\s*CREATE_MONITORING\s*\(\s*{_STRING}\s*"
    r"(?:,\s*\{([^}]*)\}\s*)?"
    r",\s*(TIME_SERIES|EVENT)\s*"
    r"(?:,\s*(\w+)\s*)?\)$",
    re.DOTALL,
)
_EXCLUDE = re.compile(rf"^EXCLUDE\s+(\w+)\s*=\s*{_STRING}$", re.DOTALL)
_SET = re.compile(r"^SET\s+(\w+)\s*=\s*([\w.]+)$")
_TEAM = re.compile(r"^TEAM\s+(\S+)$")


def _strip_comments(text: str) -> str:
    lines = []
    # Split on "\n" only: splitlines() would also split on \r, \x0c and
    # Unicode line separators, leaking the tail of a comment containing
    # them into the statement stream.
    for line in text.split("\n"):
        in_string = False
        escaped = False
        out = []
        for char in line:
            # Backslash-pair tracking ("\\" is an escaped backslash, so
            # a quote right after it still closes the string).
            if in_string:
                if escaped:
                    escaped = False
                elif char == "\\":
                    escaped = True
                elif char == '"':
                    in_string = False
            elif char == '"':
                in_string = True
            elif char == "#":
                break
            out.append(char)
        lines.append("".join(out))
    return "\n".join(lines)


def _unescape(raw: str) -> str:
    return raw.replace('\\"', '"')


def _split_statements(
    text: str,
) -> tuple[list[tuple[str, int]], tuple[str, int] | None]:
    """Split on ``;`` outside strings, tracking starting line numbers.

    Returns ``(statements, tail)`` where ``tail`` is a trailing
    fragment with no closing ``;`` (or None) — the caller decides
    whether that is fatal (:func:`parse_config`) or a finding
    (lenient linting).
    """
    statements: list[tuple[str, int]] = []
    current: list[str] = []
    line = 1
    start_line = 1
    in_string = False
    escaped = False
    for char in text:
        if char == "\n":
            line += 1
        # Same backslash-pair tracking as _strip_comments: "\\" is an
        # escaped backslash, so a quote after it closes the string.
        if in_string:
            if escaped:
                escaped = False
            elif char == "\\":
                escaped = True
            elif char == '"':
                in_string = False
        elif char == '"':
            in_string = True
        if char == ";" and not in_string:
            statement = "".join(current).strip()
            if statement:
                statements.append((statement, start_line))
            current = []
            start_line = line
        else:
            if not current:
                if char.isspace():
                    continue  # skip leading whitespace between statements
                start_line = line
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        return statements, (tail, start_line)
    return statements, None


def _parse_tags(
    tags_raw: str | None, line: int
) -> tuple[tuple[str, str], ...]:
    tags: list[tuple[str, str]] = []
    if tags_raw and tags_raw.strip():
        for item in tags_raw.split(","):
            if "=" not in item:
                raise ConfigSyntaxError(
                    f"bad tag {item.strip()!r} (expected key=value)", line
                )
            key, value = item.split("=", 1)
            tags.append((key.strip(), value.strip()))
    return tuple(tags)


def parse_statements(
    text: str, errors: list[tuple[int, str]] | None = None
) -> list[Statement]:
    """Tokenize DSL text into statement objects with line numbers.

    With ``errors=None`` (the default) the first malformed statement
    raises :class:`ConfigSyntaxError`.  When an ``errors`` list is
    given, each ``(line, message)`` problem is appended instead and
    parsing continues — the lenient mode ``repro.lint`` uses to report
    every problem in one pass.
    """

    def problem(message: str, line: int) -> None:
        if errors is None:
            raise ConfigSyntaxError(message, line)
        errors.append((line, message))

    statements: list[Statement] = []
    raw_statements, tail = _split_statements(_strip_comments(text))
    if tail is not None:
        fragment, tail_line = tail
        problem(f"missing ';' after: {fragment[:50]!r}", tail_line)
    for statement, line in raw_statements:
        if match := _LET.match(statement):
            kind_name, pattern = match.groups()
            statements.append(LetStmt(kind_name, _unescape(pattern), line))
        elif match := _MONITORING.match(statement):
            name, locator, tags_raw, data_type, class_tag = match.groups()
            try:
                tags = _parse_tags(tags_raw, line)
            except ConfigSyntaxError as exc:
                if errors is None:
                    raise
                errors.append((line, str(exc)))
                continue
            statements.append(
                MonitoringStmt(
                    name, _unescape(locator), tags, data_type, class_tag, line
                )
            )
        elif match := _EXCLUDE.match(statement):
            stmt_field, pattern = match.groups()
            statements.append(
                ExcludeStmt(stmt_field, _unescape(pattern), line)
            )
        elif match := _SET.match(statement):
            key, value = match.groups()
            statements.append(SetStmt(key, value, line))
        elif match := _TEAM.match(statement):
            statements.append(TeamStmt(match.group(1), line))
        else:
            problem(f"unrecognized statement: {statement[:60]!r}", line)
    return statements


def parse_config(
    text: str,
    team: str | None = None,
    warnings: list[str] | None = None,
) -> ScoutConfig:
    """Parse DSL text into a :class:`ScoutConfig`.

    ``team`` may be given either here or via a ``TEAM <name>;``
    statement in the text (the statement wins).

    A second ``let`` for the same component kind is a hard
    :class:`ConfigSyntaxError` — a silent overwrite would change the
    feature layout without any operator-visible signal.  Repeated
    ``SET``/``TEAM`` statements keep their historical
    last-one-wins behavior, but when a ``warnings`` list is passed the
    overwrites are surfaced there (``repro lint`` reports them as
    ``dup-set``/``dup-team`` findings).
    """

    def warn(message: str) -> None:
        if warnings is not None:
            warnings.append(message)

    component_patterns = {}
    monitoring: list[MonitoringRef] = []
    excludes: list[ExcludeRule] = []
    options: dict[str, float] = {}
    declared_team = team
    team_line: int | None = None

    for stmt in parse_statements(text):
        if isinstance(stmt, LetStmt):
            try:
                kind = parse_kind(stmt.kind_name)
            except ValueError as exc:
                raise ConfigSyntaxError(str(exc), stmt.line) from None
            if kind in component_patterns:
                raise ConfigSyntaxError(
                    f"duplicate let for {stmt.kind_name}", stmt.line
                )
            component_patterns[kind] = stmt.pattern
        elif isinstance(stmt, MonitoringStmt):
            monitoring.append(
                MonitoringRef(
                    name=stmt.name,
                    locator=stmt.locator,
                    data_type=DataKind(stmt.data_type),
                    tags=dict(stmt.tags),
                    class_tag=stmt.class_tag,
                )
            )
        elif isinstance(stmt, ExcludeStmt):
            try:
                excludes.append(ExcludeRule(stmt.field, stmt.pattern))
            except (ValueError, re.error) as exc:
                raise ConfigSyntaxError(str(exc), stmt.line) from None
        elif isinstance(stmt, SetStmt):
            if stmt.key not in KNOWN_OPTIONS:
                raise ConfigSyntaxError(
                    f"unknown option {stmt.key!r}", stmt.line
                )
            try:
                value = float(stmt.value)
            except ValueError:
                raise ConfigSyntaxError(
                    f"bad value for {stmt.key}: {stmt.value!r}", stmt.line
                ) from None
            if stmt.key in options:
                warn(
                    f"line {stmt.line}: SET {stmt.key} overrides an "
                    f"earlier value ({options[stmt.key]!r})"
                )
            options[stmt.key] = value
        elif isinstance(stmt, TeamStmt):
            if team_line is not None and stmt.name != declared_team:
                warn(
                    f"line {stmt.line}: TEAM {stmt.name} overrides an "
                    f"earlier TEAM {declared_team} (line {team_line})"
                )
            declared_team = stmt.name
            team_line = stmt.line

    if not declared_team:
        raise ConfigSyntaxError("no team declared (pass team= or add 'TEAM <name>;')")
    if not component_patterns:
        raise ConfigSyntaxError("no 'let' component patterns declared")

    kwargs = {}
    if "lookback" in options:
        kwargs["lookback"] = options["lookback"]
    if "reference_multiple" in options:
        kwargs["reference_multiple"] = options["reference_multiple"]
    if "max_members_per_container" in options:
        kwargs["max_members_per_container"] = int(options["max_members_per_container"])
    return ScoutConfig(
        team=declared_team,
        component_patterns=component_patterns,
        monitoring=monitoring,
        excludes=excludes,
        **kwargs,
    )
