"""Parser for the Scout configuration DSL of §5.1/§5.3.

The surface syntax follows the paper's examples::

    # component extraction
    let VM = "vm-\\d+\\.c\\d+\\.dc\\d+";
    let switch = "sw-(?:tor|agg|spine)\\d+\\.c\\d+\\.dc\\d+";

    # monitoring registration
    MONITORING dataset_1 = CREATE_MONITORING(
        "ping_statistics", {cluster=Y, server=Z}, TIME_SERIES, LATENCY);

    # scoping
    EXCLUDE switch = "sw-tor9.*";
    EXCLUDE TITLE = "decommission";

    # options
    SET lookback = 7200;

Strings are double-quoted; ``\\"`` escapes a quote and ``\\\\`` escapes
a backslash (so a pattern may end in a backslash).  ``#`` starts a
comment.  Statements end with ``;``.
"""

from __future__ import annotations

import re

from ..monitoring.base import DataKind
from .spec import ExcludeRule, MonitoringRef, ScoutConfig, parse_kind

__all__ = ["parse_config", "ConfigSyntaxError"]


class ConfigSyntaxError(ValueError):
    """Raised on malformed Scout configuration text."""

    def __init__(self, message: str, line: int | None = None) -> None:
        prefix = f"line {line}: " if line is not None else ""
        super().__init__(prefix + message)
        self.line = line


_STRING = r'"((?:[^"\\]|\\.)*)"'
_LET = re.compile(rf"^let\s+(\w+)\s*=\s*{_STRING}$", re.DOTALL)
_MONITORING = re.compile(
    rf"^MONITORING\s+(\w+)\s*=\s*CREATE_MONITORING\s*\(\s*{_STRING}\s*"
    r"(?:,\s*\{([^}]*)\}\s*)?"
    r",\s*(TIME_SERIES|EVENT)\s*"
    r"(?:,\s*(\w+)\s*)?\)$",
    re.DOTALL,
)
_EXCLUDE = re.compile(rf"^EXCLUDE\s+(\w+)\s*=\s*{_STRING}$", re.DOTALL)
_SET = re.compile(r"^SET\s+(\w+)\s*=\s*([\w.]+)$")
_TEAM = re.compile(r"^TEAM\s+(\S+)$")


def _strip_comments(text: str) -> str:
    lines = []
    # Split on "\n" only: splitlines() would also split on \r, \x0c and
    # Unicode line separators, leaking the tail of a comment containing
    # them into the statement stream.
    for line in text.split("\n"):
        in_string = False
        escaped = False
        out = []
        for char in line:
            # Backslash-pair tracking ("\\" is an escaped backslash, so
            # a quote right after it still closes the string).
            if in_string:
                if escaped:
                    escaped = False
                elif char == "\\":
                    escaped = True
                elif char == '"':
                    in_string = False
            elif char == '"':
                in_string = True
            elif char == "#":
                break
            out.append(char)
        lines.append("".join(out))
    return "\n".join(lines)


def _unescape(raw: str) -> str:
    return raw.replace('\\"', '"')


def _split_statements(text: str) -> list[tuple[str, int]]:
    """Split on ``;`` outside strings, tracking starting line numbers."""
    statements: list[tuple[str, int]] = []
    current: list[str] = []
    line = 1
    start_line = 1
    in_string = False
    escaped = False
    for char in text:
        if char == "\n":
            line += 1
        # Same backslash-pair tracking as _strip_comments: "\\" is an
        # escaped backslash, so a quote after it closes the string.
        if in_string:
            if escaped:
                escaped = False
            elif char == "\\":
                escaped = True
            elif char == '"':
                in_string = False
        elif char == '"':
            in_string = True
        if char == ";" and not in_string:
            statement = "".join(current).strip()
            if statement:
                statements.append((statement, start_line))
            current = []
            start_line = line
        else:
            if not current:
                if char.isspace():
                    continue  # skip leading whitespace between statements
                start_line = line
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        raise ConfigSyntaxError(f"missing ';' after: {tail[:50]!r}", start_line)
    return statements


def parse_config(text: str, team: str | None = None) -> ScoutConfig:
    """Parse DSL text into a :class:`ScoutConfig`.

    ``team`` may be given either here or via a ``TEAM <name>;``
    statement in the text (the statement wins).
    """
    component_patterns = {}
    monitoring: list[MonitoringRef] = []
    excludes: list[ExcludeRule] = []
    options: dict[str, float] = {}
    declared_team = team

    for statement, line in _split_statements(_strip_comments(text)):
        if match := _LET.match(statement):
            kind_name, pattern = match.groups()
            try:
                kind = parse_kind(kind_name)
            except ValueError as exc:
                raise ConfigSyntaxError(str(exc), line) from None
            if kind in component_patterns:
                raise ConfigSyntaxError(f"duplicate let for {kind_name}", line)
            component_patterns[kind] = _unescape(pattern)
        elif match := _MONITORING.match(statement):
            name, locator, tags_raw, data_type, class_tag = match.groups()
            tags = {}
            if tags_raw and tags_raw.strip():
                for item in tags_raw.split(","):
                    if "=" not in item:
                        raise ConfigSyntaxError(
                            f"bad tag {item.strip()!r} (expected key=value)", line
                        )
                    key, value = item.split("=", 1)
                    tags[key.strip()] = value.strip()
            monitoring.append(
                MonitoringRef(
                    name=name,
                    locator=_unescape(locator),
                    data_type=DataKind(data_type),
                    tags=tags,
                    class_tag=class_tag,
                )
            )
        elif match := _EXCLUDE.match(statement):
            field, pattern = match.groups()
            try:
                excludes.append(ExcludeRule(field, _unescape(pattern)))
            except (ValueError, re.error) as exc:
                raise ConfigSyntaxError(str(exc), line) from None
        elif match := _SET.match(statement):
            key, value = match.groups()
            if key not in ("lookback", "reference_multiple", "max_members_per_container"):
                raise ConfigSyntaxError(f"unknown option {key!r}", line)
            try:
                options[key] = float(value)
            except ValueError:
                raise ConfigSyntaxError(f"bad value for {key}: {value!r}", line) from None
        elif match := _TEAM.match(statement):
            declared_team = match.group(1)
        else:
            raise ConfigSyntaxError(f"unrecognized statement: {statement[:60]!r}", line)

    if not declared_team:
        raise ConfigSyntaxError("no team declared (pass team= or add 'TEAM <name>;')")
    if not component_patterns:
        raise ConfigSyntaxError("no 'let' component patterns declared")

    kwargs = {}
    if "lookback" in options:
        kwargs["lookback"] = options["lookback"]
    if "reference_multiple" in options:
        kwargs["reference_multiple"] = options["reference_multiple"]
    if "max_members_per_container" in options:
        kwargs["max_members_per_container"] = int(options["max_members_per_container"])
    return ScoutConfig(
        team=declared_team,
        component_patterns=component_patterns,
        monitoring=monitoring,
        excludes=excludes,
        **kwargs,
    )
