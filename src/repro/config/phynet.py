"""The PhyNet Scout's configuration (§6).

"The configuration file of PhyNet's Scout describes three types of
components: server, switch, and cluster and twelve types of monitoring
data."  We additionally declare VM and DC patterns as in the §5.1
example — VM features are dropped automatically because no PhyNet
dataset covers VMs, and DC features pool cluster signals.
"""

from __future__ import annotations

from .parser import parse_config
from .spec import ScoutConfig

__all__ = ["PHYNET_CONFIG_TEXT", "phynet_config"]

PHYNET_CONFIG_TEXT = r"""
TEAM PhyNet;

# --- component extraction (machine-generated names) -------------------
let VM      = "\bvm-\d+\.c\d+\.dc\d+\b";  # scoutlint: disable=dead-let  (no PhyNet dataset covers VMs; kept for the n_vm count feature, §5.1)
let server  = "\bsrv-\d+\.c\d+\.dc\d+\b";
let switch  = "\bsw-(?:tor|agg|spine)\d+\.c\d+\.dc\d+\b";
let cluster = "(?<![.\w-])c\d+\.dc\d+\b";
let DC      = "(?<![.\w-])dc\d+\b";

# --- the twelve Table 2 datasets ---------------------------------------
MONITORING ping       = CREATE_MONITORING("ping_statistics",
    {server=all}, TIME_SERIES);
MONITORING link_drops = CREATE_MONITORING("link_drop_statistics",
    {switch=all}, TIME_SERIES, PACKET_DROPS);
MONITORING sw_drops   = CREATE_MONITORING("switch_drop_statistics",
    {switch=all}, TIME_SERIES, PACKET_DROPS);
MONITORING canaries   = CREATE_MONITORING("canaries",
    {server=all}, EVENT);
MONITORING reboots    = CREATE_MONITORING("device_reboots",
    {server=all, switch=all}, EVENT);
MONITORING link_loss  = CREATE_MONITORING("link_loss_status",
    {switch=all}, TIME_SERIES);
MONITORING fcs        = CREATE_MONITORING("fcs_corruption",
    {switch=all}, EVENT);
MONITORING syslogs    = CREATE_MONITORING("snmp_syslogs",
    {switch=all}, EVENT);
MONITORING pfc        = CREATE_MONITORING("pfc_counters",
    {switch=all}, TIME_SERIES);
MONITORING ifcounters = CREATE_MONITORING("interface_counters",
    {switch=all}, TIME_SERIES);
MONITORING temp       = CREATE_MONITORING("temperature",
    {server=all, switch=all}, TIME_SERIES);
# cpu_usage is collected from switch supervisors only (Table 2); a
# server=all tag here would claim coverage the dataset does not have.
MONITORING cpu        = CREATE_MONITORING("cpu_usage",
    {switch=all}, TIME_SERIES);

# --- scoping -------------------------------------------------------------
# Decommissioned hardware is another team's problem (§5.3 example).
EXCLUDE TITLE = "decommission";

SET lookback = 7200;
"""


def phynet_config() -> ScoutConfig:
    """Parse and return the PhyNet Scout configuration."""
    return parse_config(PHYNET_CONFIG_TEXT)
