"""Columnar monitoring shards: chunked, materialized signal storage.

The hash-based generators make every query a recompute: each look-back
pull re-derives its window sample-by-sample (``sin`` + ``ndtri`` per
point for series, Poisson inversion plus per-event offsets for events).
That is the right trade for nine months of telemetry nobody reads — and
the wrong one for serving, where the same (dataset, component) signals
are pulled for every incident.

A *shard* is the materialized form of one (dataset, component) signal,
stored as fixed-size chunks of contiguous numpy arrays:

* ``SeriesChunk`` — ``chunk_size`` consecutive samples of the baseline
  signal, plus the floored copy served to effect-free queries.  The
  sample index is the time index (``timestamp = index * interval``), so
  a window lookup is integer arithmetic plus an array slice.
* ``EventChunk`` — the background events of ``chunk_size`` consecutive
  one-minute bins, kept in *construction order* (per event type, bins
  ascending — exactly the order the generator path builds its parts
  in), plus per-type cumulative bin counts so a window's event count is
  two subtractions.

Everything a chunk stores is computed with the exact same elementwise
expressions as the per-query generator path, so a chunk-backed query is
byte-identical to a generated one — the store's parity tests assert
this, window by window.

Chunks are materialized lazily on first touch, kept in an LRU cache
with a configurable cap, and can optionally be memmap-backed (series
values only) so many processes share one on-disk copy.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .base import BaselineSpec, DatasetSchema
from .generators import (
    normal_at,
    normal_grid,
    poisson_counts,
    poisson_counts_grid,
    uniform_at,
    uniform_mixed,
)

__all__ = [
    "ShardConfig",
    "ShardStats",
    "SeriesChunk",
    "EventChunk",
    "ShardCache",
    "baseline_series_values",
    "baseline_series_values_grid",
    "background_event_parts",
    "background_event_parts_batch",
]

_DAY = 86400.0
_HOUR = 3600.0
_EVENT_BIN = 60.0


def baseline_series_values(
    spec: BaselineSpec, seed: int, indices: np.ndarray, timestamps: np.ndarray
) -> np.ndarray:
    """Healthy baseline samples at ``indices`` (pre-effect, pre-floor).

    The single source of truth for the series value formula: the
    store's scalar query path and the chunk materializer both call it,
    so shard-backed reads cannot drift from generated ones.  Every
    operation is elementwise, which is what makes a chunk computed over
    ``[k*C, (k+1)*C)`` bit-identical to a window computed over any
    sub-range.
    """
    return (
        spec.mean
        + spec.diurnal_amp * np.sin(2.0 * np.pi * timestamps / _DAY)
        + spec.std * normal_at(seed, indices)
    )


def baseline_series_values_grid(
    spec: BaselineSpec,
    seeds: np.ndarray,
    indices: np.ndarray,
    timestamps: np.ndarray,
) -> np.ndarray:
    """:func:`baseline_series_values` for many signals at once.

    Row ``d`` is bit-identical to
    ``baseline_series_values(spec, seeds[d], indices, timestamps)``:
    :func:`normal_grid` row-matches ``normal_at`` exactly, and the
    surrounding expression keeps the same evaluation order, broadcast
    over rows.
    """
    return (
        spec.mean
        + spec.diurnal_amp * np.sin(2.0 * np.pi * timestamps / _DAY)
        + spec.std * normal_grid(seeds, indices)
    )


def background_event_parts(
    schema: DatasetSchema, seed: int, first: int, last: int
) -> list[tuple[str, np.ndarray, np.ndarray]]:
    """Background events for bins ``[first, last]``, in generator order.

    Returns one ``(event_type, times, counts)`` triple per event type
    (types sorted — the generator's iteration order), where ``times``
    holds the event timestamps in construction order (bins ascending,
    the j-th event of a bin hashed at index ``bin + j``) and ``counts``
    the per-bin event counts.  Shared by the scalar query path and the
    chunk materializer.
    """
    parts: list[tuple[str, np.ndarray, np.ndarray]] = []
    n_bins = last - first + 1
    indices = np.arange(first, last + 1, dtype=np.uint64)
    for stream, (event_type, hourly_rate) in enumerate(
        sorted(schema.events.rates.items())
    ):
        lam = hourly_rate * _EVENT_BIN / _HOUR
        counts = poisson_counts(seed, indices, lam, stream=stream + 1)
        nonzero = counts > 0
        if not np.any(nonzero):
            parts.append((event_type, np.empty(0), np.zeros(n_bins, dtype=int)))
            continue
        bins = indices[nonzero]
        per_bin = counts[nonzero]
        total = int(per_bin.sum())
        # Event j of a bin draws its offset at hash index ``bin + j``.
        rep_bins = np.repeat(bins, per_bin)
        ends = np.cumsum(per_bin)
        within = (
            np.arange(total, dtype=np.uint64)
            - np.repeat(ends - per_bin, per_bin).astype(np.uint64)
        )
        offsets = uniform_at(seed, rep_bins + within, stream=1000 + stream)
        times = rep_bins.astype(float) * _EVENT_BIN + offsets * _EVENT_BIN
        parts.append((event_type, times, counts))
    return parts


def background_event_parts_batch(
    schema: DatasetSchema, seeds: list[int], first: int, last: int
) -> list[list[tuple[str, np.ndarray, np.ndarray]]]:
    """:func:`background_event_parts` for many signals at once.

    Entry ``d`` is bit-identical to
    ``background_event_parts(schema, seeds[d], first, last)``: the bin
    counts of every signal hash through one :func:`poisson_counts_grid`
    call per event type, and the per-event time offsets of all signals
    concatenate into a single :func:`uniform_mixed` pass — each event
    keeps its scalar hash index ``bin + j``, so slicing the combined
    draw back apart reproduces the per-signal arrays exactly.
    """
    n_bins = last - first + 1
    indices = np.arange(first, last + 1, dtype=np.uint64)
    seeds_arr = np.asarray(seeds, dtype=np.uint64)
    out: list[list[tuple[str, np.ndarray, np.ndarray]]] = [[] for _ in seeds]
    for stream, (event_type, hourly_rate) in enumerate(
        sorted(schema.events.rates.items())
    ):
        lam = hourly_rate * _EVENT_BIN / _HOUR
        counts_grid = poisson_counts_grid(
            seeds_arr, indices, lam, stream=stream + 1
        )
        key_parts: list[np.ndarray] = []
        seed_parts: list[np.ndarray] = []
        pending: list[tuple[int, np.ndarray, np.ndarray]] = []
        for d, seed in enumerate(seeds):
            counts = counts_grid[d]
            nonzero = counts > 0
            if not np.any(nonzero):
                out[d].append(
                    (event_type, np.empty(0), np.zeros(n_bins, dtype=int))
                )
                continue
            bins = indices[nonzero]
            per_bin = counts[nonzero]
            total = int(per_bin.sum())
            # Event j of a bin draws its offset at hash index ``bin + j``.
            rep_bins = np.repeat(bins, per_bin)
            ends = np.cumsum(per_bin)
            within = (
                np.arange(total, dtype=np.uint64)
                - np.repeat(ends - per_bin, per_bin).astype(np.uint64)
            )
            key_parts.append(rep_bins + within)
            seed_parts.append(np.full(total, seed, dtype=np.uint64))
            pending.append((d, rep_bins, counts))
        if not pending:
            continue
        offsets_all = uniform_mixed(
            np.concatenate(seed_parts),
            np.concatenate(key_parts),
            stream=1000 + stream,
        )
        pos = 0
        for d, rep_bins, counts in pending:
            offsets = offsets_all[pos : pos + len(rep_bins)]
            pos += len(rep_bins)
            times = rep_bins.astype(float) * _EVENT_BIN + offsets * _EVENT_BIN
            out[d].append((event_type, times, counts))
    return out


@dataclass(frozen=True)
class ShardConfig:
    """Materialization policy for one store's shard cache."""

    series_chunk: int = 512   # samples per series chunk
    event_chunk: int = 512    # one-minute bins per event chunk
    max_chunks: int = 16384   # LRU cap across series + event chunks
    memmap_dir: str | None = None  # back series chunks with on-disk memmaps

    def __post_init__(self) -> None:
        if self.series_chunk < 2 or self.event_chunk < 2:
            raise ValueError("chunk sizes must be at least 2")
        if self.max_chunks < 1:
            raise ValueError("max_chunks must be positive")


@dataclass
class ShardStats:
    """Counters describing one store's shard cache."""

    series_materializations: int = 0
    event_materializations: int = 0
    evictions: int = 0
    resident_bytes: int = 0


@dataclass(frozen=True)
class SeriesChunk:
    """``chunk_size`` consecutive baseline samples of one signal.

    ``final`` is the floored copy (identical object when the dataset
    has no floor) and is what effect-free queries slice; it is marked
    read-only so served views cannot be mutated by callers.
    """

    start_index: int
    final: np.ndarray

    @property
    def nbytes(self) -> int:
        return int(self.final.nbytes)


@dataclass(frozen=True)
class EventChunk:
    """Background events of ``chunk_size`` consecutive one-minute bins.

    ``parts`` holds one ``(event_type, times, cum)`` triple per event
    type in sorted-type order: ``times`` in construction order and
    ``cum`` the cumulative per-bin counts (length ``chunk_size + 1``),
    so the events of local bins ``[lo, hi]`` are exactly
    ``times[cum[lo]:cum[hi + 1]]`` — a zero-copy view in the order the
    generator path would have built.
    """

    start_bin: int
    parts: tuple[tuple[str, np.ndarray, np.ndarray], ...]

    @property
    def nbytes(self) -> int:
        return int(
            sum(times.nbytes + cum.nbytes for _, times, cum in self.parts)
        )


def _build_event_chunk(
    start_bin: int, raw: list[tuple[str, np.ndarray, np.ndarray]]
) -> EventChunk:
    """Freeze generator parts into an :class:`EventChunk`."""
    parts = []
    for event_type, times, counts in raw:
        cum = np.concatenate(([0], np.cumsum(counts, dtype=np.int64)))
        times.flags.writeable = False
        parts.append((event_type, times, cum))
    return EventChunk(start_bin=start_bin, parts=tuple(parts))


@dataclass
class ShardCache:
    """LRU-capped chunk cache for one monitoring store.

    Thread-compatibility note: the owning store serializes
    materialization behind its shard lock; the cache itself is a plain
    OrderedDict.
    """

    config: ShardConfig
    stats: ShardStats = field(default_factory=ShardStats)

    def __post_init__(self) -> None:
        self._series: OrderedDict[tuple, SeriesChunk] = OrderedDict()
        self._events: OrderedDict[tuple, EventChunk] = OrderedDict()

    # -- series -------------------------------------------------------------

    def series_chunk(
        self, key: tuple, spec: BaselineSpec, seed: int
    ) -> SeriesChunk:
        """The series chunk for ``key = (dataset, component, chunk_no)``."""
        chunk = self._series.get(key)
        if chunk is not None:
            self._series.move_to_end(key)
            return chunk
        chunk = self._materialize_series(key, spec, seed)
        self._series[key] = chunk
        self.stats.series_materializations += 1
        self.stats.resident_bytes += chunk.nbytes
        self._evict()
        return chunk

    def series_chunks_batch(
        self, keys: list[tuple], spec: BaselineSpec, seeds: list[int]
    ) -> list[SeriesChunk]:
        """Chunks for many signals of one dataset, same chunk window.

        Cache misses materialize together: one broadcast
        :func:`baseline_series_values_grid` call per distinct chunk
        number replaces a scalar generator call per signal — the same
        batching the store's non-sharded ``query_series_batch`` path
        does, applied to chunk filling.  Each returned chunk is
        bit-identical to what :meth:`series_chunk` would have built.
        """
        found: dict[tuple, SeriesChunk] = {}
        queued: set[tuple] = set()
        missing_by_k: dict[int, list[tuple[tuple, int]]] = {}
        for key, seed in zip(keys, seeds):
            chunk = self._series.get(key)
            if chunk is not None:
                self._series.move_to_end(key)
                found[key] = chunk
            elif key not in queued:
                queued.add(key)
                missing_by_k.setdefault(key[2], []).append((key, seed))
        size = self.config.series_chunk
        for k, entries in missing_by_k.items():
            start = k * size
            indices = np.arange(start, start + size, dtype=np.uint64)
            timestamps = indices.astype(float) * spec.interval
            grid = baseline_series_values_grid(
                spec,
                np.array([seed for _, seed in entries], dtype=np.uint64),
                indices,
                timestamps,
            )
            if spec.floor is not None:
                np.maximum(grid, spec.floor, out=grid)
            for row, (key, seed) in enumerate(entries):
                final = grid[row].copy()
                if self.config.memmap_dir is not None:
                    final = self._to_memmap(key, final, seed)
                else:
                    final.flags.writeable = False
                chunk = SeriesChunk(start_index=start, final=final)
                self._series[key] = chunk
                found[key] = chunk
                self.stats.series_materializations += 1
                self.stats.resident_bytes += chunk.nbytes
            self._evict()
        return [found[key] for key in keys]

    def _materialize_series(
        self, key: tuple, spec: BaselineSpec, seed: int
    ) -> SeriesChunk:
        size = self.config.series_chunk
        start = key[2] * size
        indices = np.arange(start, start + size, dtype=np.uint64)
        timestamps = indices.astype(float) * spec.interval
        values = baseline_series_values(spec, seed, indices, timestamps)
        if spec.floor is not None:
            final = np.maximum(values, spec.floor)
        else:
            final = values
        if self.config.memmap_dir is not None:
            final = self._to_memmap(key, final, seed)
        else:
            final.flags.writeable = False
        return SeriesChunk(start_index=start, final=final)

    def _to_memmap(self, key: tuple, final: np.ndarray, seed: int) -> np.ndarray:
        directory = Path(self.config.memmap_dir)
        directory.mkdir(parents=True, exist_ok=True)
        # The series seed is already a stable 64-bit hash of
        # (global seed, dataset, component), so it names the file.
        path = directory / f"series_{seed:016x}_{key[2]}.f64"
        if not path.exists():
            mm = np.memmap(path, dtype=np.float64, mode="w+", shape=final.shape)
            mm[:] = final
            mm.flush()
            del mm
        return np.memmap(path, dtype=np.float64, mode="r", shape=final.shape)

    # -- events -------------------------------------------------------------

    def event_chunk(
        self, key: tuple, schema: DatasetSchema, seed: int
    ) -> EventChunk:
        """The event chunk for ``key = (dataset, component, chunk_no)``."""
        chunk = self._events.get(key)
        if chunk is not None:
            self._events.move_to_end(key)
            return chunk
        size = self.config.event_chunk
        first = key[2] * size
        raw = background_event_parts(schema, seed, first, first + size - 1)
        chunk = _build_event_chunk(first, raw)
        self._events[key] = chunk
        self.stats.event_materializations += 1
        self.stats.resident_bytes += chunk.nbytes
        self._evict()
        return chunk

    def event_chunks_batch(
        self, keys: list[tuple], schema: DatasetSchema, seeds: list[int]
    ) -> list[EventChunk]:
        """Chunks for many signals of one dataset, same chunk window.

        Cache misses materialize together through
        :func:`background_event_parts_batch`: one Poisson grid per
        event type plus one offset hash pass replaces a scalar
        generator call per signal.  Each returned chunk is
        bit-identical to what :meth:`event_chunk` would have built.
        """
        found: dict[tuple, EventChunk] = {}
        queued: set[tuple] = set()
        missing_by_k: dict[int, list[tuple[tuple, int]]] = {}
        for key, seed in zip(keys, seeds):
            chunk = self._events.get(key)
            if chunk is not None:
                self._events.move_to_end(key)
                found[key] = chunk
            elif key not in queued:
                queued.add(key)
                missing_by_k.setdefault(key[2], []).append((key, seed))
        size = self.config.event_chunk
        for k, entries in missing_by_k.items():
            first = k * size
            raw_all = background_event_parts_batch(
                schema, [seed for _, seed in entries], first, first + size - 1
            )
            for (key, _), raw in zip(entries, raw_all):
                chunk = _build_event_chunk(first, raw)
                self._events[key] = chunk
                found[key] = chunk
                self.stats.event_materializations += 1
                self.stats.resident_bytes += chunk.nbytes
            self._evict()
        return [found[key] for key in keys]

    # -- lifecycle ----------------------------------------------------------

    def _evict(self) -> None:
        while len(self._series) + len(self._events) > self.config.max_chunks:
            # Evict from whichever cache holds its least-recently-used
            # entry longer ago; ties prefer series (cheaper to rebuild).
            if self._series:
                _, chunk = self._series.popitem(last=False)
            else:
                _, chunk = self._events.popitem(last=False)
            self.stats.evictions += 1
            self.stats.resident_bytes -= chunk.nbytes

    def clear(self) -> None:
        self._series.clear()
        self._events.clear()
        self.stats.resident_bytes = 0

    def __len__(self) -> int:
        return len(self._series) + len(self._events)
