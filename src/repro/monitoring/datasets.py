"""The twelve PhyNet monitoring datasets of Table 2.

Each entry mirrors one row of the paper's Table 2 with plausible
synthetic baselines.  The two packet-drop datasets share the
``PACKET_DROPS`` class tag — the paper notes the PhyNet Scout has
exactly two datasets with a class tag, enabling the framework to
combine "related" data (§5.1).
"""

from __future__ import annotations

from ..datacenter.components import ComponentKind
from .base import BaselineSpec, DataKind, DatasetSchema, EventSpec

__all__ = ["phynet_datasets", "PHYNET_DATASET_NAMES"]

_SWITCH = frozenset({ComponentKind.SWITCH})
_SERVER = frozenset({ComponentKind.SERVER})
_SWITCH_AND_SERVER = frozenset({ComponentKind.SWITCH, ComponentKind.SERVER})


def phynet_datasets() -> list[DatasetSchema]:
    """Build the Table 2 dataset registry.

    Note the deliberate omission of any VM-covering dataset: "PhyNet is
    not responsible for monitoring the health of VMs (other teams are)
    and so the PhyNet Scout does not have VM features" (§5.2).
    """
    return [
        DatasetSchema(
            name="ping_statistics",
            kind=DataKind.TIME_SERIES,
            component_kinds=_SERVER,
            description=(
                "Pingmesh-style latency between pairs of servers (ms)"
            ),
            baseline=BaselineSpec(mean=0.5, std=0.05, diurnal_amp=0.05, floor=0.0),
        ),
        DatasetSchema(
            name="link_drop_statistics",
            kind=DataKind.TIME_SERIES,
            component_kinds=_SWITCH,
            description="Diagnosed per-link packet-drop rate (fraction)",
            class_tag="PACKET_DROPS",
            baseline=BaselineSpec(mean=1e-5, std=5e-6, floor=0.0),
        ),
        DatasetSchema(
            name="switch_drop_statistics",
            kind=DataKind.TIME_SERIES,
            component_kinds=_SWITCH,
            description="Diagnosed per-switch packet-drop rate (fraction)",
            class_tag="PACKET_DROPS",
            baseline=BaselineSpec(mean=1e-5, std=5e-6, floor=0.0),
        ),
        DatasetSchema(
            name="canaries",
            kind=DataKind.EVENT,
            component_kinds=_SERVER,
            description=(
                "Reachability failures reported by per-rack canary VMs"
            ),
            events=EventSpec(rates={"canary_unreachable": 0.02}),
        ),
        DatasetSchema(
            name="device_reboots",
            kind=DataKind.EVENT,
            component_kinds=_SWITCH_AND_SERVER,
            description="Host and switch reboot records",
            events=EventSpec(rates={"reboot": 0.005}),
        ),
        DatasetSchema(
            name="link_loss_status",
            kind=DataKind.TIME_SERIES,
            component_kinds=_SWITCH,
            description="Counter-derived packet-loss rate on switch ports",
            baseline=BaselineSpec(mean=2e-5, std=1e-5, floor=0.0),
        ),
        DatasetSchema(
            name="fcs_corruption",
            kind=DataKind.EVENT,
            component_kinds=_SWITCH,
            description=(
                "Errors raised when link corruption (FCS) loss exceeds "
                "the operator threshold"
            ),
            events=EventSpec(rates={"fcs_error": 0.01}),
        ),
        DatasetSchema(
            name="snmp_syslogs",
            kind=DataKind.EVENT,
            component_kinds=_SWITCH,
            description="SNMP traps and switch syslog messages",
            events=EventSpec(
                rates={
                    "link_down": 0.05,
                    "bgp_flap": 0.03,
                    "parity_error": 0.01,
                }
            ),
        ),
        DatasetSchema(
            name="pfc_counters",
            kind=DataKind.TIME_SERIES,
            component_kinds=_SWITCH,
            description="Priority-flow-control pause frames per interval",
            baseline=BaselineSpec(mean=20.0, std=5.0, diurnal_amp=5.0, floor=0.0),
        ),
        DatasetSchema(
            name="interface_counters",
            kind=DataKind.TIME_SERIES,
            component_kinds=_SWITCH,
            description="Packets dropped on switch interfaces per interval",
            baseline=BaselineSpec(mean=10.0, std=3.0, diurnal_amp=2.0, floor=0.0),
        ),
        DatasetSchema(
            name="temperature",
            kind=DataKind.TIME_SERIES,
            component_kinds=_SWITCH_AND_SERVER,
            description="Component (ASIC / server) temperature (°C)",
            baseline=BaselineSpec(mean=55.0, std=1.5, diurnal_amp=2.0, floor=15.0),
        ),
        DatasetSchema(
            name="cpu_usage",
            kind=DataKind.TIME_SERIES,
            # Switch control-plane CPU only: server CPU is the compute
            # team's signal, and folding it in would make every
            # host-level failure look like a PhyNet problem.
            component_kinds=_SWITCH,
            description="Network device CPU utilization (fraction)",
            baseline=BaselineSpec(mean=0.35, std=0.05, diurnal_amp=0.1, floor=0.0),
        ),
    ]


PHYNET_DATASET_NAMES = tuple(schema.name for schema in phynet_datasets())
