"""Deterministic random-access signal generation.

Nine months of per-5-minute telemetry for every component × dataset pair
would be enormous if materialized, so signals are *functions of time*:
the value at sample index ``i`` of a series is derived from a
SplitMix64-style hash of ``(series_seed, i)``.  Any window can be
queried lazily, repeatedly, and out of order, and always yields the
same data — which the Scout's look-back queries and the retraining
experiments both rely on.
"""

from __future__ import annotations

import numpy as np
from scipy.special import ndtri

__all__ = [
    "series_seed",
    "uniform_at",
    "normal_at",
    "uniform_grid",
    "normal_grid",
    "uniform_mixed",
    "poisson_counts",
    "poisson_counts_grid",
]

_MASK = np.uint64(0xFFFFFFFFFFFFFFFF)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 finalizer — a high-quality 64-bit mixer.

    Unsigned array arithmetic wraps silently in numpy, so no overflow
    guards are needed (this runs in the store's per-query hot path).
    """
    x = x.astype(np.uint64)
    z = (x + np.uint64(0x9E3779B97F4A7C15)) & _MASK
    z = ((z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & _MASK
    z = ((z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & _MASK
    return z ^ (z >> np.uint64(31))


_MASK_INT = 0xFFFFFFFFFFFFFFFF


def _splitmix64_int(x: int) -> int:
    """Scalar SplitMix64 finalizer on Python ints (hot path)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK_INT
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK_INT
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK_INT
    return x ^ (x >> 31)


def series_seed(global_seed: int, dataset: str, component: str) -> int:
    """A stable 64-bit seed for one (dataset, component) signal."""
    # Python's hash() is salted per-process; use FNV-1a + SplitMix64.
    acc = global_seed & _MASK_INT
    for text in (dataset, component):
        for byte in text.encode():
            acc = ((acc * 1099511628211) & _MASK_INT) ^ byte
        acc = _splitmix64_int(acc)
    return acc


def uniform_at(seed: int, indices: np.ndarray, stream: int = 0) -> np.ndarray:
    """Uniform(0, 1) samples at arbitrary integer indices of a stream."""
    indices = np.asarray(indices, dtype=np.uint64)
    keys = (
        np.uint64(seed)
        ^ (indices * np.uint64(0x9E3779B97F4A7C15))
        ^ np.uint64((seed * 0xD6E8FEB86659FD93 * (stream + 1)) & _MASK_INT)
    ) & _MASK
    bits = _splitmix64(keys)
    # 53-bit mantissa → uniform in (0, 1), never exactly 0 or 1.
    return (bits >> np.uint64(11)).astype(float) / 9007199254740992.0 + 5e-17


def normal_at(seed: int, indices: np.ndarray, stream: int = 0) -> np.ndarray:
    """Standard-normal samples at arbitrary indices (inverse CDF)."""
    return ndtri(uniform_at(seed, indices, stream))


def uniform_grid(
    seeds: np.ndarray, indices: np.ndarray, stream: int = 0
) -> np.ndarray:
    """Uniform(0, 1) samples for many streams over shared indices.

    Returns a ``(len(seeds), len(indices))`` matrix whose row ``d``
    equals ``uniform_at(seeds[d], indices, stream)`` bit-for-bit: the
    per-key construction is the same modular arithmetic, just broadcast
    so one :func:`_splitmix64` call covers every (seed, index) pair.
    """
    seeds = np.asarray(seeds, dtype=np.uint64).reshape(-1, 1)
    indices = np.asarray(indices, dtype=np.uint64).reshape(1, -1)
    # seed * C * (stream+1) mod 2**64 — modular products commute, so
    # folding the constant first matches the scalar path exactly.
    salt = seeds * np.uint64((0xD6E8FEB86659FD93 * (stream + 1)) & _MASK_INT)
    keys = seeds ^ (indices * np.uint64(0x9E3779B97F4A7C15)) ^ salt
    bits = _splitmix64(keys)
    return (bits >> np.uint64(11)).astype(float) / 9007199254740992.0 + 5e-17


def normal_grid(
    seeds: np.ndarray, indices: np.ndarray, stream: int = 0
) -> np.ndarray:
    """Standard-normal samples for many streams over shared indices."""
    return ndtri(uniform_grid(seeds, indices, stream))


def uniform_mixed(
    seeds: np.ndarray, indices: np.ndarray, stream: int = 0
) -> np.ndarray:
    """Uniform(0, 1) samples where each element carries its own seed.

    ``uniform_mixed(seeds, indices)[k] == uniform_at(seeds[k],
    [indices[k]])[0]`` bit-for-bit — it lets callers concatenate the
    pending draws of many streams and hash them in a single pass.
    """
    seeds = np.asarray(seeds, dtype=np.uint64)
    indices = np.asarray(indices, dtype=np.uint64)
    salt = seeds * np.uint64((0xD6E8FEB86659FD93 * (stream + 1)) & _MASK_INT)
    keys = seeds ^ (indices * np.uint64(0x9E3779B97F4A7C15)) ^ salt
    bits = _splitmix64(keys)
    return (bits >> np.uint64(11)).astype(float) / 9007199254740992.0 + 5e-17


def poisson_counts(
    seed: int, indices: np.ndarray, lam: float, stream: int = 0
) -> np.ndarray:
    """Poisson(λ) counts at arbitrary bin indices via inverse transform.

    Intended for the small per-bin rates of background event noise;
    truncated at a count where the CDF is ≥ 1 - 1e-9 for the given λ.
    """
    if lam < 0:
        raise ValueError("lam must be non-negative")
    if lam == 0.0:
        return np.zeros(len(np.atleast_1d(indices)), dtype=int)
    u = uniform_at(seed, indices, stream)
    return np.searchsorted(_poisson_cdf(lam), u).astype(int)


def poisson_counts_grid(
    seeds: np.ndarray, indices: np.ndarray, lam: float, stream: int = 0
) -> np.ndarray:
    """Poisson(λ) counts for many streams over shared bin indices.

    Returns a ``(len(seeds), len(indices))`` matrix whose row ``d``
    equals ``poisson_counts(seeds[d], indices, lam, stream)``
    bit-for-bit: the same inverse-transform lookup, fed by
    :func:`uniform_grid` so one hash pass covers every (seed, bin)
    pair.
    """
    if lam < 0:
        raise ValueError("lam must be non-negative")
    seeds = np.asarray(seeds, dtype=np.uint64)
    if lam == 0.0:
        n = len(np.atleast_1d(indices))
        return np.zeros((len(seeds), n), dtype=int)
    u = uniform_grid(seeds, indices, stream)
    return np.searchsorted(_poisson_cdf(lam), u).astype(int)


_POISSON_CDF_CACHE: dict[float, np.ndarray] = {}


def _poisson_cdf(lam: float) -> np.ndarray:
    """Poisson CDF out to the far tail, cached per rate."""
    cdf = _POISSON_CDF_CACHE.get(lam)
    if cdf is None:
        max_k = max(10, int(lam + 10.0 * np.sqrt(lam) + 10))
        pmf = np.empty(max_k + 1)
        pmf[0] = np.exp(-lam)
        for k in range(1, max_k + 1):
            pmf[k] = pmf[k - 1] * lam / k
        cdf = np.cumsum(pmf)
        _POISSON_CDF_CACHE[lam] = cdf
    return cdf
