"""The monitoring store: lazy, deterministic, effect-aware queries.

``MonitoringStore`` answers the only question the Scout framework asks
of monitoring infrastructure: *give me this dataset for this component
over the look-back window ``[t - T, t]``*.  Healthy baselines come from
the hash-based generators; failure scenarios overlay
:class:`FailureEffect` distortions.  Datasets can be deactivated to
model deprecated monitoring systems (Figure 9) or a monitoring system
that itself failed during the incident (§6).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..datacenter.components import Component
from .base import (
    DataKind,
    DatasetSchema,
    EventSeries,
    FailureEffect,
    TimeSeries,
)
from .generators import (
    _poisson_cdf,
    normal_at,
    normal_grid,
    poisson_counts,
    series_seed,
    uniform_at,
    uniform_grid,
    uniform_mixed,
)

__all__ = ["MonitoringStore"]

_DAY = 86400.0
_HOUR = 3600.0
# Event noise is binned at one-minute granularity.
_EVENT_BIN = 60.0


def _assemble_events(
    time_parts: list[np.ndarray], types: list[str]
) -> EventSeries:
    """Merge per-source event times/types into one time-sorted series."""
    times_arr = np.concatenate(time_parts) if time_parts else np.empty(0)
    order = np.argsort(times_arr, kind="stable")
    times_arr = times_arr[order]
    types_tuple = tuple(types[i] for i in order)
    return EventSeries(times_arr, types_tuple)


class MonitoringStore:
    """Queryable monitoring plane for the synthetic cloud."""

    def __init__(self, schemas: list[DatasetSchema], seed: int = 0) -> None:
        names = [schema.name for schema in schemas]
        if len(set(names)) != len(names):
            raise ValueError("duplicate dataset names")
        self._schemas = {schema.name: schema for schema in schemas}
        self._seed = seed
        self._inactive: set[str] = set()
        # Effects indexed by (dataset, component), kept sorted by start.
        self._effects: dict[tuple[str, str], list[FailureEffect]] = defaultdict(list)
        self._seed_memo: dict[tuple[str, str], int] = {}

    def _series_seed(self, dataset: str, component: str) -> int:
        key = (dataset, component)
        seed = self._seed_memo.get(key)
        if seed is None:
            seed = series_seed(self._seed, dataset, component)
            self._seed_memo[key] = seed
        return seed

    # -- registry ----------------------------------------------------------

    @property
    def dataset_names(self) -> list[str]:
        return sorted(self._schemas)

    @property
    def active_dataset_names(self) -> list[str]:
        return sorted(set(self._schemas) - self._inactive)

    def schema(self, dataset: str) -> DatasetSchema:
        try:
            return self._schemas[dataset]
        except KeyError:
            raise KeyError(f"unknown dataset: {dataset!r}") from None

    def deactivate(self, dataset: str) -> None:
        """Model a deprecated/failed monitoring system (Fig 9, §6)."""
        self.schema(dataset)
        self._inactive.add(dataset)

    def activate(self, dataset: str) -> None:
        self.schema(dataset)
        self._inactive.discard(dataset)

    def is_active(self, dataset: str) -> bool:
        return dataset not in self._inactive

    def covers(self, dataset: str, component: Component) -> bool:
        return self.schema(dataset).covers(component.kind)

    # -- effects -----------------------------------------------------------

    def inject(self, effect: FailureEffect) -> None:
        """Register a scenario's distortion of one signal."""
        schema = self.schema(effect.dataset)
        if schema.kind is DataKind.TIME_SERIES and effect.mode == "burst":
            raise ValueError(
                f"{effect.dataset} is TIME_SERIES; burst effects apply to events"
            )
        if schema.kind is DataKind.EVENT and effect.mode != "burst":
            raise ValueError(
                f"{effect.dataset} is EVENT; only burst effects apply"
            )
        effects = self._effects[(effect.dataset, effect.component)]
        effects.append(effect)
        effects.sort(key=lambda e: e.start)

    def clear_effects(self) -> None:
        self._effects.clear()

    def snapshot_effects(self) -> dict:
        """Copy the current effect registry (pair with restore_effects)."""
        return {key: list(value) for key, value in self._effects.items()}

    def restore_effects(self, snapshot: dict) -> None:
        """Restore a registry captured by :meth:`snapshot_effects`."""
        self._effects = defaultdict(
            list, {key: list(value) for key, value in snapshot.items()}
        )

    def effects_for(self, dataset: str, component: str) -> list[FailureEffect]:
        return list(self._effects.get((dataset, component), []))

    # -- queries -----------------------------------------------------------

    def query_series(
        self, dataset: str, component: Component, t0: float, t1: float
    ) -> TimeSeries | None:
        """The dataset's time series for ``component`` over ``[t0, t1]``.

        Returns None when the dataset is inactive or does not cover the
        component's kind — the caller decides whether that means
        "impute" (§6) or "no features for this component type" (§5.2).
        """
        schema = self.schema(dataset)
        if schema.kind is not DataKind.TIME_SERIES:
            raise ValueError(f"{dataset} is not TIME_SERIES")
        if not self.is_active(dataset) or not schema.covers(component.kind):
            return None
        if t1 < t0:
            raise ValueError("query window end must be >= start")
        spec = schema.baseline
        # The monitoring plane starts at the simulation epoch: clamp
        # windows that reach before t=0.
        first = max(0, int(np.ceil(t0 / spec.interval)))
        last = int(np.floor(t1 / spec.interval))
        if last < first:
            return TimeSeries(np.empty(0), np.empty(0))
        indices = np.arange(first, last + 1, dtype=np.uint64)
        timestamps = indices.astype(float) * spec.interval
        seed = self._series_seed(dataset, component.name)
        values = (
            spec.mean
            + spec.diurnal_amp * np.sin(2.0 * np.pi * timestamps / _DAY)
            + spec.std * normal_at(seed, indices)
        )
        values = self._apply_series_effects(
            dataset, component.name, timestamps, values
        )
        if spec.floor is not None:
            np.maximum(values, spec.floor, out=values)
        return TimeSeries(timestamps, values)

    def query_series_batch(
        self, dataset: str, components: list[Component], t0: float, t1: float
    ) -> list[TimeSeries | None]:
        """Batched :meth:`query_series` over many components.

        Returns one entry per component, each bit-identical to the
        scalar query.  All components share the same window, so the bin
        indices, timestamps, and diurnal baseline are computed once and
        only the per-component hash noise differs — one broadcast
        :func:`normal_grid` call replaces ``len(components)`` scalar
        generator calls, which is where feature pulls spend their time.
        """
        schema = self.schema(dataset)
        if schema.kind is not DataKind.TIME_SERIES:
            raise ValueError(f"{dataset} is not TIME_SERIES")
        if t1 < t0:
            raise ValueError("query window end must be >= start")
        out: list[TimeSeries | None] = [None] * len(components)
        if not self.is_active(dataset):
            return out
        covered = [
            (i, c) for i, c in enumerate(components) if schema.covers(c.kind)
        ]
        if not covered:
            return out
        spec = schema.baseline
        first = max(0, int(np.ceil(t0 / spec.interval)))
        last = int(np.floor(t1 / spec.interval))
        if last < first:
            for i, _ in covered:
                out[i] = TimeSeries(np.empty(0), np.empty(0))
            return out
        indices = np.arange(first, last + 1, dtype=np.uint64)
        timestamps = indices.astype(float) * spec.interval
        base = spec.mean + spec.diurnal_amp * np.sin(
            2.0 * np.pi * timestamps / _DAY
        )
        seeds = np.array(
            [self._series_seed(dataset, c.name) for _, c in covered],
            dtype=np.uint64,
        )
        values = base[np.newaxis, :] + spec.std * normal_grid(seeds, indices)
        for row, (i, component) in enumerate(covered):
            series = self._apply_series_effects(
                dataset, component.name, timestamps, values[row]
            )
            if spec.floor is not None:
                np.maximum(series, spec.floor, out=series)
            out[i] = TimeSeries(timestamps, series)
        return out

    def _apply_series_effects(
        self,
        dataset: str,
        component: str,
        timestamps: np.ndarray,
        values: np.ndarray,
    ) -> np.ndarray:
        effects = self._effects.get((dataset, component))
        if not effects or len(timestamps) == 0:
            return values
        # Scalar window-overlap pre-filter: histories accumulate many
        # effects per (dataset, component) and most lie entirely outside
        # the queried window, so skip them before any array work.
        t_lo = timestamps[0]
        t_hi = timestamps[-1]
        copied = False
        for effect in effects:
            if effect.start > t_hi:
                break  # effects are kept sorted by start
            if effect.end < t_lo:
                continue
            mask = (timestamps >= effect.start) & (timestamps <= effect.end)
            if not copied:
                values = values.copy()
                copied = True
            if effect.mode == "shift":
                values[mask] += effect.magnitude
            elif effect.mode == "scale":
                values[mask] *= effect.magnitude
            elif effect.mode == "spike":
                # Exponential decay with a 10-minute time constant.
                dt = timestamps[mask] - effect.start
                values[mask] += effect.magnitude * np.exp(-dt / 600.0)
        return values

    def query_events(
        self, dataset: str, component: Component, t0: float, t1: float
    ) -> EventSeries | None:
        """The dataset's events for ``component`` over ``[t0, t1]``."""
        schema = self.schema(dataset)
        if schema.kind is not DataKind.EVENT:
            raise ValueError(f"{dataset} is not EVENT")
        if not self.is_active(dataset) or not schema.covers(component.kind):
            return None
        if t1 < t0:
            raise ValueError("query window end must be >= start")
        seed = self._series_seed(dataset, component.name)
        first = max(0, int(np.ceil(t0 / _EVENT_BIN)))
        last = int(np.floor(t1 / _EVENT_BIN))
        time_parts: list[np.ndarray] = []
        types: list[str] = []
        if last >= first:
            indices = np.arange(first, last + 1, dtype=np.uint64)
            for stream, (event_type, hourly_rate) in enumerate(
                sorted(schema.events.rates.items())
            ):
                lam = hourly_rate * _EVENT_BIN / _HOUR
                counts = poisson_counts(seed, indices, lam, stream=stream + 1)
                nonzero = counts > 0
                if not np.any(nonzero):
                    continue
                bins = indices[nonzero]
                per_bin = counts[nonzero]
                total = int(per_bin.sum())
                # Event j of a bin draws its offset at hash index
                # ``bin + j`` — np.repeat builds all (bin, j) pairs at
                # once instead of one tiny uniform_at call per bin.
                rep_bins = np.repeat(bins, per_bin)
                ends = np.cumsum(per_bin)
                within = (
                    np.arange(total, dtype=np.uint64)
                    - np.repeat(ends - per_bin, per_bin).astype(np.uint64)
                )
                offsets = uniform_at(seed, rep_bins + within, stream=1000 + stream)
                time_parts.append(
                    rep_bins.astype(float) * _EVENT_BIN + offsets * _EVENT_BIN
                )
                types.extend([event_type] * total)
        self._append_burst_events(
            dataset, component.name, t0, t1, time_parts, types
        )
        return _assemble_events(time_parts, types)

    def _append_burst_events(
        self,
        dataset: str,
        component: str,
        t0: float,
        t1: float,
        time_parts: list[np.ndarray],
        types: list[str],
    ) -> None:
        """Burst effects add failure events deterministically."""
        for effect in self._effects.get((dataset, component), []):
            if effect.start >= t1:
                break  # effects are kept sorted by start
            lo = max(t0, effect.start)
            hi = min(t1, effect.end)
            if hi <= lo or effect.rate <= 0.0:
                continue
            n_events = max(1, int(round(effect.rate * (hi - lo) / _HOUR)))
            time_parts.append(np.linspace(lo, hi, n_events, endpoint=False))
            types.extend([effect.event_type] * n_events)

    def query_events_batch(
        self, dataset: str, components: list[Component], t0: float, t1: float
    ) -> list[EventSeries | None]:
        """Batched :meth:`query_events` over many components.

        Bit-identical per entry to the scalar query.  The Poisson bin
        counts of every component hash through one :func:`uniform_grid`
        call per event type, and the per-event time offsets of all
        components concatenate into one :func:`uniform_mixed` call —
        the per-component work that remains is array slicing.
        """
        schema = self.schema(dataset)
        if schema.kind is not DataKind.EVENT:
            raise ValueError(f"{dataset} is not EVENT")
        if t1 < t0:
            raise ValueError("query window end must be >= start")
        out: list[EventSeries | None] = [None] * len(components)
        if not self.is_active(dataset):
            return out
        covered = [
            (i, c) for i, c in enumerate(components) if schema.covers(c.kind)
        ]
        if not covered:
            return out
        first = max(0, int(np.ceil(t0 / _EVENT_BIN)))
        last = int(np.floor(t1 / _EVENT_BIN))
        time_parts: list[list[np.ndarray]] = [[] for _ in covered]
        types: list[list[str]] = [[] for _ in covered]
        if last >= first:
            indices = np.arange(first, last + 1, dtype=np.uint64)
            seeds = np.array(
                [self._series_seed(dataset, c.name) for _, c in covered],
                dtype=np.uint64,
            )
            for stream, (event_type, hourly_rate) in enumerate(
                sorted(schema.events.rates.items())
            ):
                lam = hourly_rate * _EVENT_BIN / _HOUR
                if lam == 0.0:
                    continue
                u = uniform_grid(seeds, indices, stream=stream + 1)
                counts = np.searchsorted(_poisson_cdf(lam), u)
                rows = np.flatnonzero(counts.any(axis=1))
                if rows.size == 0:
                    continue
                key_parts: list[np.ndarray] = []
                seed_parts: list[np.ndarray] = []
                bin_parts: list[np.ndarray] = []
                for row in rows:
                    nonzero = counts[row] > 0
                    bins = indices[nonzero]
                    per_bin = counts[row][nonzero]
                    total = int(per_bin.sum())
                    # Event j of a bin draws its offset at hash index
                    # ``bin + j``, exactly as the scalar query does.
                    rep_bins = np.repeat(bins, per_bin)
                    ends = np.cumsum(per_bin)
                    within = (
                        np.arange(total, dtype=np.uint64)
                        - np.repeat(ends - per_bin, per_bin).astype(np.uint64)
                    )
                    key_parts.append(rep_bins + within)
                    seed_parts.append(
                        np.full(total, seeds[row], dtype=np.uint64)
                    )
                    bin_parts.append(rep_bins)
                offsets = uniform_mixed(
                    np.concatenate(seed_parts),
                    np.concatenate(key_parts),
                    stream=1000 + stream,
                )
                pos = 0
                for row, rep_bins in zip(rows, bin_parts):
                    chunk = offsets[pos : pos + len(rep_bins)]
                    pos += len(rep_bins)
                    time_parts[row].append(
                        rep_bins.astype(float) * _EVENT_BIN + chunk * _EVENT_BIN
                    )
                    types[row].extend([event_type] * len(rep_bins))
        for row, (i, component) in enumerate(covered):
            self._append_burst_events(
                dataset, component.name, t0, t1, time_parts[row], types[row]
            )
            out[i] = _assemble_events(time_parts[row], types[row])
        return out

    # -- convenience -------------------------------------------------------

    def datasets_covering(self, component: Component) -> list[DatasetSchema]:
        """Active schemas that monitor this component's kind."""
        return [
            schema
            for name, schema in sorted(self._schemas.items())
            if name not in self._inactive and schema.covers(component.kind)
        ]
