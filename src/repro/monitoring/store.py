"""The monitoring store: lazy, deterministic, effect-aware queries.

``MonitoringStore`` answers the only question the Scout framework asks
of monitoring infrastructure: *give me this dataset for this component
over the look-back window ``[t - T, t]``*.  Healthy baselines come from
the hash-based generators; failure scenarios overlay
:class:`FailureEffect` distortions.  Datasets can be deactivated to
model deprecated monitoring systems (Figure 9) or a monitoring system
that itself failed during the incident (§6).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..datacenter.components import Component
from .base import (
    DataKind,
    DatasetSchema,
    EventSeries,
    FailureEffect,
    TimeSeries,
)
from .generators import normal_at, poisson_counts, series_seed, uniform_at

__all__ = ["MonitoringStore"]

_DAY = 86400.0
_HOUR = 3600.0
# Event noise is binned at one-minute granularity.
_EVENT_BIN = 60.0


class MonitoringStore:
    """Queryable monitoring plane for the synthetic cloud."""

    def __init__(self, schemas: list[DatasetSchema], seed: int = 0) -> None:
        names = [schema.name for schema in schemas]
        if len(set(names)) != len(names):
            raise ValueError("duplicate dataset names")
        self._schemas = {schema.name: schema for schema in schemas}
        self._seed = seed
        self._inactive: set[str] = set()
        # Effects indexed by (dataset, component), kept sorted by start.
        self._effects: dict[tuple[str, str], list[FailureEffect]] = defaultdict(list)
        self._seed_memo: dict[tuple[str, str], int] = {}

    def _series_seed(self, dataset: str, component: str) -> int:
        key = (dataset, component)
        seed = self._seed_memo.get(key)
        if seed is None:
            seed = series_seed(self._seed, dataset, component)
            self._seed_memo[key] = seed
        return seed

    # -- registry ----------------------------------------------------------

    @property
    def dataset_names(self) -> list[str]:
        return sorted(self._schemas)

    @property
    def active_dataset_names(self) -> list[str]:
        return sorted(set(self._schemas) - self._inactive)

    def schema(self, dataset: str) -> DatasetSchema:
        try:
            return self._schemas[dataset]
        except KeyError:
            raise KeyError(f"unknown dataset: {dataset!r}") from None

    def deactivate(self, dataset: str) -> None:
        """Model a deprecated/failed monitoring system (Fig 9, §6)."""
        self.schema(dataset)
        self._inactive.add(dataset)

    def activate(self, dataset: str) -> None:
        self.schema(dataset)
        self._inactive.discard(dataset)

    def is_active(self, dataset: str) -> bool:
        return dataset not in self._inactive

    def covers(self, dataset: str, component: Component) -> bool:
        return self.schema(dataset).covers(component.kind)

    # -- effects -----------------------------------------------------------

    def inject(self, effect: FailureEffect) -> None:
        """Register a scenario's distortion of one signal."""
        schema = self.schema(effect.dataset)
        if schema.kind is DataKind.TIME_SERIES and effect.mode == "burst":
            raise ValueError(
                f"{effect.dataset} is TIME_SERIES; burst effects apply to events"
            )
        if schema.kind is DataKind.EVENT and effect.mode != "burst":
            raise ValueError(
                f"{effect.dataset} is EVENT; only burst effects apply"
            )
        effects = self._effects[(effect.dataset, effect.component)]
        effects.append(effect)
        effects.sort(key=lambda e: e.start)

    def clear_effects(self) -> None:
        self._effects.clear()

    def snapshot_effects(self) -> dict:
        """Copy the current effect registry (pair with restore_effects)."""
        return {key: list(value) for key, value in self._effects.items()}

    def restore_effects(self, snapshot: dict) -> None:
        """Restore a registry captured by :meth:`snapshot_effects`."""
        self._effects = defaultdict(
            list, {key: list(value) for key, value in snapshot.items()}
        )

    def effects_for(self, dataset: str, component: str) -> list[FailureEffect]:
        return list(self._effects.get((dataset, component), []))

    # -- queries -----------------------------------------------------------

    def query_series(
        self, dataset: str, component: Component, t0: float, t1: float
    ) -> TimeSeries | None:
        """The dataset's time series for ``component`` over ``[t0, t1]``.

        Returns None when the dataset is inactive or does not cover the
        component's kind — the caller decides whether that means
        "impute" (§6) or "no features for this component type" (§5.2).
        """
        schema = self.schema(dataset)
        if schema.kind is not DataKind.TIME_SERIES:
            raise ValueError(f"{dataset} is not TIME_SERIES")
        if not self.is_active(dataset) or not schema.covers(component.kind):
            return None
        if t1 < t0:
            raise ValueError("query window end must be >= start")
        spec = schema.baseline
        # The monitoring plane starts at the simulation epoch: clamp
        # windows that reach before t=0.
        first = max(0, int(np.ceil(t0 / spec.interval)))
        last = int(np.floor(t1 / spec.interval))
        if last < first:
            return TimeSeries(np.empty(0), np.empty(0))
        indices = np.arange(first, last + 1, dtype=np.uint64)
        timestamps = indices.astype(float) * spec.interval
        seed = self._series_seed(dataset, component.name)
        values = (
            spec.mean
            + spec.diurnal_amp * np.sin(2.0 * np.pi * timestamps / _DAY)
            + spec.std * normal_at(seed, indices)
        )
        values = self._apply_series_effects(
            dataset, component.name, timestamps, values
        )
        if spec.floor is not None:
            np.maximum(values, spec.floor, out=values)
        return TimeSeries(timestamps, values)

    def _apply_series_effects(
        self,
        dataset: str,
        component: str,
        timestamps: np.ndarray,
        values: np.ndarray,
    ) -> np.ndarray:
        effects = self._effects.get((dataset, component))
        if not effects:
            return values
        values = values.copy()
        for effect in effects:
            mask = (timestamps >= effect.start) & (timestamps <= effect.end)
            if not np.any(mask):
                continue
            if effect.mode == "shift":
                values[mask] += effect.magnitude
            elif effect.mode == "scale":
                values[mask] *= effect.magnitude
            elif effect.mode == "spike":
                # Exponential decay with a 10-minute time constant.
                dt = timestamps[mask] - effect.start
                values[mask] += effect.magnitude * np.exp(-dt / 600.0)
        return values

    def query_events(
        self, dataset: str, component: Component, t0: float, t1: float
    ) -> EventSeries | None:
        """The dataset's events for ``component`` over ``[t0, t1]``."""
        schema = self.schema(dataset)
        if schema.kind is not DataKind.EVENT:
            raise ValueError(f"{dataset} is not EVENT")
        if not self.is_active(dataset) or not schema.covers(component.kind):
            return None
        if t1 < t0:
            raise ValueError("query window end must be >= start")
        seed = self._series_seed(dataset, component.name)
        first = max(0, int(np.ceil(t0 / _EVENT_BIN)))
        last = int(np.floor(t1 / _EVENT_BIN))
        times: list[float] = []
        types: list[str] = []
        if last >= first:
            indices = np.arange(first, last + 1, dtype=np.uint64)
            for stream, (event_type, hourly_rate) in enumerate(
                sorted(schema.events.rates.items())
            ):
                lam = hourly_rate * _EVENT_BIN / _HOUR
                counts = poisson_counts(seed, indices, lam, stream=stream + 1)
                for idx, count in zip(indices[counts > 0], counts[counts > 0]):
                    bin_start = float(idx) * _EVENT_BIN
                    offsets = uniform_at(
                        seed,
                        np.arange(int(count), dtype=np.uint64) + idx,
                        stream=1000 + stream,
                    )
                    for off in offsets:
                        times.append(bin_start + float(off) * _EVENT_BIN)
                        types.append(event_type)
        # Burst effects add failure events deterministically.
        for effect in self._effects.get((dataset, component.name), []):
            lo = max(t0, effect.start)
            hi = min(t1, effect.end)
            if hi <= lo or effect.rate <= 0.0:
                continue
            n_events = max(1, int(round(effect.rate * (hi - lo) / _HOUR)))
            event_times = np.linspace(lo, hi, n_events, endpoint=False)
            times.extend(float(x) for x in event_times)
            types.extend([effect.event_type] * n_events)
        order = np.argsort(times, kind="stable")
        times_arr = np.asarray(times, dtype=float)[order]
        types_tuple = tuple(types[i] for i in order)
        return EventSeries(times_arr, types_tuple)

    # -- convenience -------------------------------------------------------

    def datasets_covering(self, component: Component) -> list[DatasetSchema]:
        """Active schemas that monitor this component's kind."""
        return [
            schema
            for name, schema in sorted(self._schemas.items())
            if name not in self._inactive and schema.covers(component.kind)
        ]
