"""The monitoring store: lazy, deterministic, effect-aware queries.

``MonitoringStore`` answers the only question the Scout framework asks
of monitoring infrastructure: *give me this dataset for this component
over the look-back window ``[t - T, t]``*.  Healthy baselines come from
the hash-based generators; failure scenarios overlay
:class:`FailureEffect` distortions.  Datasets can be deactivated to
model deprecated monitoring systems (Figure 9) or a monitoring system
that itself failed during the incident (§6).

Two storage regimes share one query surface:

* **Generated** (the default): every query recomputes its window from
  the hash generators.  Nothing is resident, any timestamp is
  reachable, and simulation-scale history costs no memory.
* **Sharded** (``enable_shards()``): queries are served from columnar
  per-(dataset, component) chunks materialized once from the same
  generators (see :mod:`.shards`).  Byte-identical to the generated
  path — the chunk arrays are produced by the very same elementwise
  expressions — but a repeat pull is an index computation plus an
  array slice instead of a regeneration.  Windows overlapping an
  injected effect fall back to the generated path (effects are
  per-scenario state; chunks only hold the healthy baseline, which is
  also why deactivation/effect changes can never serve stale shard
  data — activity is checked before the shard lookup, and effects
  simply bypass it).
"""

from __future__ import annotations

import threading
from collections import defaultdict

import numpy as np

from ..datacenter.components import Component
from .base import (
    DataKind,
    DatasetSchema,
    EventSeries,
    FailureEffect,
    TimeSeries,
)
from .generators import (
    _poisson_cdf,
    normal_grid,
    poisson_counts,
    series_seed,
    uniform_grid,
    uniform_mixed,
)
from .shards import (
    ShardCache,
    ShardConfig,
    background_event_parts,
    baseline_series_values,
)

__all__ = ["MonitoringStore"]

_DAY = 86400.0
_HOUR = 3600.0
# Event noise is binned at one-minute granularity.
_EVENT_BIN = 60.0


def _assemble_events(
    time_parts: list[np.ndarray], types: list[str]
) -> EventSeries:
    """Merge per-source event times/types into one time-sorted series."""
    times_arr = np.concatenate(time_parts) if time_parts else np.empty(0)
    order = np.argsort(times_arr, kind="stable")
    times_arr = times_arr[order]
    types_tuple = tuple(types[i] for i in order)
    return EventSeries(times_arr, types_tuple)


def _event_parts_from_chunks(
    chunks: list,
    size: int,
    first: int,
    last: int,
    time_parts: list[np.ndarray],
    types: list[str],
) -> None:
    """Append the events of bins ``[first, last]`` from event chunks.

    Parts are emitted type-major then bin-ascending — exactly the
    construction order of the generated path — so the downstream stable
    sort in :func:`_assemble_events` breaks ties identically.  Every
    appended array is a zero-copy view into a chunk.
    """
    if not chunks or not chunks[0].parts:
        return
    for type_index in range(len(chunks[0].parts)):
        event_type = chunks[0].parts[type_index][0]
        for chunk in chunks:
            _, times, cum = chunk.parts[type_index]
            base = chunk.start_bin
            lo = max(first, base) - base
            hi = min(last, base + size - 1) - base
            window = times[cum[lo] : cum[hi + 1]]
            if len(window):
                time_parts.append(window)
                types.extend([event_type] * len(window))


def _event_counts_from_chunks(
    chunks: list, size: int, first: int, last: int
) -> dict[str, int]:
    """Per-type counts of bins ``[first, last]`` from cumulative tables."""
    counts: dict[str, int] = {}
    if not chunks or not chunks[0].parts:
        return counts
    for type_index in range(len(chunks[0].parts)):
        event_type = chunks[0].parts[type_index][0]
        total = 0
        for chunk in chunks:
            _, _, cum = chunk.parts[type_index]
            base = chunk.start_bin
            lo = max(first, base) - base
            hi = min(last, base + size - 1) - base
            total += int(cum[hi + 1] - cum[lo])
        counts[event_type] = total
    return counts


class MonitoringStore:
    """Queryable monitoring plane for the synthetic cloud."""

    def __init__(self, schemas: list[DatasetSchema], seed: int = 0) -> None:
        names = [schema.name for schema in schemas]
        if len(set(names)) != len(names):
            raise ValueError("duplicate dataset names")
        self._schemas = {schema.name: schema for schema in schemas}
        self._seed = seed
        self._inactive: set[str] = set()
        # Effects indexed by (dataset, component), kept sorted by start.
        self._effects: dict[tuple[str, str], list[FailureEffect]] = defaultdict(list)
        self._seed_memo: dict[tuple[str, str], int] = {}
        # Columnar shard state (enable_shards()): the chunk cache, its
        # config (kept separately so pickled stores re-enable shards in
        # worker processes with an empty cache), and a lock serializing
        # materialization — several serving threads may fault in the
        # same chunk at once.
        self._shards: ShardCache | None = None
        self._shard_config: ShardConfig | None = None
        self._shard_lock = threading.Lock()
        # Bumped whenever registry-wide signal identity changes
        # (clear/restore effects, activate/deactivate); combined with
        # the per-pair effect count in effects_generation() so callers
        # can content-address anything derived from a signal.
        self._effects_gen = 0
        # Observability sink (None = un-instrumented), same bound-
        # counter pattern as the feature builder.
        self._obs = None
        self._bound_counters: dict = {}

    def _series_seed(self, dataset: str, component: str) -> int:
        key = (dataset, component)
        seed = self._seed_memo.get(key)
        if seed is None:
            seed = series_seed(self._seed, dataset, component)
            self._seed_memo[key] = seed
        return seed

    # -- observability -------------------------------------------------------

    @property
    def obs(self):
        return self._obs

    @obs.setter
    def obs(self, value) -> None:
        self._obs = value
        self._bound_counters = {}  # handles belong to the old registry

    def _count_shard(self, kind: str) -> None:
        if self._obs is None:
            return
        bound = self._bound_counters.get(kind)
        if bound is None:
            bound = self._obs.metrics.counter(
                "shard_materializations_total",
                "Columnar shard chunks materialized, by signal kind.",
                labels=("kind",),
            ).bind(kind=kind)
            self._bound_counters[kind] = bound
        bound.inc()

    # -- pickling ------------------------------------------------------------

    def __getstate__(self) -> dict:
        # Chunk caches are processor-local working state: drop them (a
        # worker re-materializes lazily) along with the lock and any
        # bound counter handles, keep the shard *config* so shard mode
        # survives the trip.
        state = self.__dict__.copy()
        state["_shard_lock"] = None
        state["_shards"] = None
        state["_bound_counters"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._shard_lock = threading.Lock()
        if self._shard_config is not None:
            self._shards = ShardCache(self._shard_config)

    # -- shard lifecycle -----------------------------------------------------

    @property
    def shards_enabled(self) -> bool:
        return self._shards is not None

    @property
    def shard_stats(self):
        """Live :class:`~.shards.ShardStats`, or None when disabled."""
        return self._shards.stats if self._shards is not None else None

    def enable_shards(
        self,
        series_chunk: int = 512,
        event_chunk: int = 512,
        max_chunks: int = 16384,
        memmap_dir: str | None = None,
    ) -> None:
        """Switch to columnar shard-backed queries (byte-identical).

        Idempotent for an identical configuration; a different
        configuration replaces the cache (dropping materialized
        chunks).
        """
        config = ShardConfig(
            series_chunk=series_chunk,
            event_chunk=event_chunk,
            max_chunks=max_chunks,
            memmap_dir=memmap_dir,
        )
        with self._shard_lock:
            if self._shard_config == config and self._shards is not None:
                return
            self._shard_config = config
            self._shards = ShardCache(config)

    def drop_shards(self) -> None:
        """Return to purely generated queries and free chunk memory."""
        with self._shard_lock:
            if self._shards is not None:
                self._shards.clear()
            self._shards = None
            self._shard_config = None

    # -- registry ----------------------------------------------------------

    @property
    def dataset_names(self) -> list[str]:
        return sorted(self._schemas)

    @property
    def active_dataset_names(self) -> list[str]:
        return sorted(set(self._schemas) - self._inactive)

    def schema(self, dataset: str) -> DatasetSchema:
        try:
            return self._schemas[dataset]
        except KeyError:
            raise KeyError(f"unknown dataset: {dataset!r}") from None

    def deactivate(self, dataset: str) -> None:
        """Model a deprecated/failed monitoring system (Fig 9, §6)."""
        self.schema(dataset)
        self._inactive.add(dataset)
        self._effects_gen += 1

    def activate(self, dataset: str) -> None:
        self.schema(dataset)
        self._inactive.discard(dataset)
        self._effects_gen += 1

    def is_active(self, dataset: str) -> bool:
        return dataset not in self._inactive

    def covers(self, dataset: str, component: Component) -> bool:
        return self.schema(dataset).covers(component.kind)

    # -- effects -----------------------------------------------------------

    def inject(self, effect: FailureEffect) -> None:
        """Register a scenario's distortion of one signal."""
        schema = self.schema(effect.dataset)
        if schema.kind is DataKind.TIME_SERIES and effect.mode == "burst":
            raise ValueError(
                f"{effect.dataset} is TIME_SERIES; burst effects apply to events"
            )
        if schema.kind is DataKind.EVENT and effect.mode != "burst":
            raise ValueError(
                f"{effect.dataset} is EVENT; only burst effects apply"
            )
        effects = self._effects[(effect.dataset, effect.component)]
        effects.append(effect)
        effects.sort(key=lambda e: e.start)

    def clear_effects(self) -> None:
        self._effects.clear()
        self._effects_gen += 1

    def snapshot_effects(self) -> dict:
        """Copy the current effect registry (pair with restore_effects)."""
        return {key: list(value) for key, value in self._effects.items()}

    def restore_effects(self, snapshot: dict) -> None:
        """Restore a registry captured by :meth:`snapshot_effects`."""
        self._effects = defaultdict(
            list, {key: list(value) for key, value in snapshot.items()}
        )
        self._effects_gen += 1

    def effects_for(self, dataset: str, component: str) -> list[FailureEffect]:
        return list(self._effects.get((dataset, component), []))

    def effects_generation(self, dataset: str, component: str) -> tuple[int, int]:
        """A token that changes whenever this signal's content could.

        The global counter bumps on registry-wide mutations
        (clear/restore/activate/deactivate); the per-pair effect count
        grows on inject.  Anything derived from the signal — a
        normalized window, an event count — stays valid exactly as long
        as this token is unchanged, which is how the incremental
        feature engine content-addresses its caches.
        """
        return (
            self._effects_gen,
            len(self._effects.get((dataset, component), ())),
        )

    def effects_token(self, dataset: str) -> tuple[int, int]:
        """A token that changes whenever ANY of the dataset's signals could.

        The dataset-wide analogue of :meth:`effects_generation`: the
        global counter plus the dataset's total injected-effect count.
        Anything pooled across the dataset's components — the feature
        engine's per-type event totals — stays valid exactly as long as
        this token is unchanged.  The scan is O(pairs carrying effects),
        which is zero on the healthy serving path.
        """
        total = sum(
            len(effects)
            for (name, _), effects in self._effects.items()
            if name == dataset
        )
        return (self._effects_gen, total)

    def _effects_overlap(
        self, dataset: str, component: str, t_lo: float, t_hi: float
    ) -> bool:
        """Does any injected effect touch ``[t_lo, t_hi]``?"""
        effects = self._effects.get((dataset, component))
        if not effects:
            return False
        for effect in effects:
            if effect.start > t_hi:
                break  # effects are kept sorted by start
            if effect.end >= t_lo:
                return True
        return False

    # -- shard-backed window assembly ---------------------------------------

    def _shard_series_values(
        self, dataset: str, component: str, spec, seed: int, first: int, last: int
    ) -> np.ndarray:
        """Baseline window ``[first, last]`` sliced from series chunks.

        Single-chunk windows (the common case) return a read-only view;
        straddling windows concatenate chunk slices.  Only valid for
        effect-free windows — ``final`` already carries the floor.
        """
        shards = self._shards
        size = shards.config.series_chunk
        k0 = first // size
        k1 = last // size
        with self._shard_lock:
            if k0 == k1:
                chunk = self._series_chunk(dataset, component, spec, seed, k0)
                base = chunk.start_index
                return chunk.final[first - base : last + 1 - base]
            parts = []
            for k in range(k0, k1 + 1):
                chunk = self._series_chunk(dataset, component, spec, seed, k)
                base = chunk.start_index
                lo = max(first, base) - base
                hi = min(last, base + size - 1) - base
                parts.append(chunk.final[lo : hi + 1])
        return np.concatenate(parts)

    def _shard_series_values_batch(
        self,
        dataset: str,
        names: list[str],
        spec,
        seeds: list[int],
        first: int,
        last: int,
    ) -> list[np.ndarray]:
        """Batched :meth:`_shard_series_values` over many components.

        All signals share the window, hence the chunk numbers: missing
        chunks materialize through one broadcast generator call per
        chunk number instead of one scalar call per signal (the cold
        path of a serving burst).  Served slices are byte-identical to
        the scalar path's.
        """
        shards = self._shards
        size = shards.config.series_chunk
        k0 = first // size
        k1 = last // size
        per_k: list[list] = []
        with self._shard_lock:
            for k in range(k0, k1 + 1):
                before = shards.stats.series_materializations
                chunks = shards.series_chunks_batch(
                    [(dataset, name, k) for name in names], spec, seeds
                )
                for _ in range(shards.stats.series_materializations - before):
                    self._count_shard("series")
                per_k.append(chunks)
        out: list[np.ndarray] = []
        for i in range(len(names)):
            if k0 == k1:
                chunk = per_k[0][i]
                base = chunk.start_index
                out.append(chunk.final[first - base : last + 1 - base])
                continue
            parts = []
            for chunks in per_k:
                chunk = chunks[i]
                base = chunk.start_index
                lo = max(first, base) - base
                hi = min(last, base + size - 1) - base
                parts.append(chunk.final[lo : hi + 1])
            out.append(np.concatenate(parts))
        return out

    def _series_chunk(self, dataset, component, spec, seed, k):
        before = self._shards.stats.series_materializations
        chunk = self._shards.series_chunk((dataset, component, k), spec, seed)
        if self._shards.stats.series_materializations != before:
            self._count_shard("series")
        return chunk

    def _event_chunk(self, dataset, component, schema, seed, k):
        before = self._shards.stats.event_materializations
        chunk = self._shards.event_chunk((dataset, component, k), schema, seed)
        if self._shards.stats.event_materializations != before:
            self._count_shard("events")
        return chunk

    def _shard_event_chunks_batch(
        self,
        dataset: str,
        names: list[str],
        schema: DatasetSchema,
        seeds: list[int],
        first: int,
        last: int,
    ) -> list[list]:
        """Event chunks covering bins ``[first, last]``, per component.

        The event twin of :meth:`_shard_series_values_batch`: all
        components share the window, so missing chunks of each chunk
        number materialize through one
        :func:`~repro.monitoring.shards.background_event_parts_batch`
        call instead of one scalar generator pass per component.
        """
        shards = self._shards
        size = shards.config.event_chunk
        k0 = first // size
        k1 = last // size
        per_k: list[list] = []
        with self._shard_lock:
            for k in range(k0, k1 + 1):
                before = shards.stats.event_materializations
                chunks = shards.event_chunks_batch(
                    [(dataset, name, k) for name in names], schema, seeds
                )
                for _ in range(shards.stats.event_materializations - before):
                    self._count_shard("events")
                per_k.append(chunks)
        return [[chunks[i] for chunks in per_k] for i in range(len(names))]

    def _shard_event_parts(
        self,
        dataset: str,
        component: str,
        schema: DatasetSchema,
        seed: int,
        first: int,
        last: int,
        time_parts: list[np.ndarray],
        types: list[str],
    ) -> None:
        """Append background events of bins ``[first, last]`` from chunks."""
        size = self._shards.config.event_chunk
        k0 = first // size
        k1 = last // size
        with self._shard_lock:
            chunks = [
                self._event_chunk(dataset, component, schema, seed, k)
                for k in range(k0, k1 + 1)
            ]
        _event_parts_from_chunks(chunks, size, first, last, time_parts, types)

    # -- queries -----------------------------------------------------------

    def query_series(
        self, dataset: str, component: Component, t0: float, t1: float
    ) -> TimeSeries | None:
        """The dataset's time series for ``component`` over ``[t0, t1]``.

        Returns None when the dataset is inactive or does not cover the
        component's kind — the caller decides whether that means
        "impute" (§6) or "no features for this component type" (§5.2).
        """
        schema = self.schema(dataset)
        if schema.kind is not DataKind.TIME_SERIES:
            raise ValueError(f"{dataset} is not TIME_SERIES")
        if not self.is_active(dataset) or not schema.covers(component.kind):
            return None
        if t1 < t0:
            raise ValueError("query window end must be >= start")
        spec = schema.baseline
        # The monitoring plane starts at the simulation epoch: clamp
        # windows that reach before t=0.
        first = max(0, int(np.ceil(t0 / spec.interval)))
        last = int(np.floor(t1 / spec.interval))
        if last < first:
            return TimeSeries(np.empty(0), np.empty(0))
        indices = np.arange(first, last + 1, dtype=np.uint64)
        timestamps = indices.astype(float) * spec.interval
        seed = self._series_seed(dataset, component.name)
        if self._shards is not None and not self._effects_overlap(
            dataset, component.name, timestamps[0], timestamps[-1]
        ):
            values = self._shard_series_values(
                dataset, component.name, spec, seed, first, last
            )
            return TimeSeries(timestamps, values)
        values = baseline_series_values(spec, seed, indices, timestamps)
        values = self._apply_series_effects(
            dataset, component.name, timestamps, values
        )
        if spec.floor is not None:
            np.maximum(values, spec.floor, out=values)
        return TimeSeries(timestamps, values)

    def query_series_batch(
        self, dataset: str, components: list[Component], t0: float, t1: float
    ) -> list[TimeSeries | None]:
        """Batched :meth:`query_series` over many components.

        Returns one entry per component, each bit-identical to the
        scalar query.  With shards enabled every entry is a chunk
        slice; otherwise all components share the same window, so the
        bin indices, timestamps, and diurnal baseline are computed once
        and only the per-component hash noise differs — one broadcast
        :func:`normal_grid` call replaces ``len(components)`` scalar
        generator calls, which is where feature pulls spend their time.
        """
        schema = self.schema(dataset)
        if schema.kind is not DataKind.TIME_SERIES:
            raise ValueError(f"{dataset} is not TIME_SERIES")
        if t1 < t0:
            raise ValueError("query window end must be >= start")
        out: list[TimeSeries | None] = [None] * len(components)
        if not self.is_active(dataset):
            return out
        covered = [
            (i, c) for i, c in enumerate(components) if schema.covers(c.kind)
        ]
        if not covered:
            return out
        spec = schema.baseline
        first = max(0, int(np.ceil(t0 / spec.interval)))
        last = int(np.floor(t1 / spec.interval))
        if last < first:
            for i, _ in covered:
                out[i] = TimeSeries(np.empty(0), np.empty(0))
            return out
        indices = np.arange(first, last + 1, dtype=np.uint64)
        timestamps = indices.astype(float) * spec.interval
        if self._shards is not None:
            t_lo, t_hi = timestamps[0], timestamps[-1]
            sliceable: list[tuple[int, str, int]] = []
            for i, component in covered:
                seed = self._series_seed(dataset, component.name)
                if self._effects_overlap(dataset, component.name, t_lo, t_hi):
                    values = baseline_series_values(
                        spec, seed, indices, timestamps
                    )
                    values = self._apply_series_effects(
                        dataset, component.name, timestamps, values
                    )
                    if spec.floor is not None:
                        np.maximum(values, spec.floor, out=values)
                    out[i] = TimeSeries(timestamps, values)
                else:
                    sliceable.append((i, component.name, seed))
            if sliceable:
                values_list = self._shard_series_values_batch(
                    dataset,
                    [name for _, name, _ in sliceable],
                    spec,
                    [seed for _, _, seed in sliceable],
                    first,
                    last,
                )
                for (i, _, _), values in zip(sliceable, values_list):
                    out[i] = TimeSeries(timestamps, values)
            return out
        base = spec.mean + spec.diurnal_amp * np.sin(
            2.0 * np.pi * timestamps / _DAY
        )
        seeds = np.array(
            [self._series_seed(dataset, c.name) for _, c in covered],
            dtype=np.uint64,
        )
        values = base[np.newaxis, :] + spec.std * normal_grid(seeds, indices)
        for row, (i, component) in enumerate(covered):
            series = self._apply_series_effects(
                dataset, component.name, timestamps, values[row]
            )
            if spec.floor is not None:
                np.maximum(series, spec.floor, out=series)
            out[i] = TimeSeries(timestamps, series)
        return out

    def _apply_series_effects(
        self,
        dataset: str,
        component: str,
        timestamps: np.ndarray,
        values: np.ndarray,
    ) -> np.ndarray:
        effects = self._effects.get((dataset, component))
        if not effects or len(timestamps) == 0:
            return values
        # Scalar window-overlap pre-filter: histories accumulate many
        # effects per (dataset, component) and most lie entirely outside
        # the queried window, so skip them before any array work.
        t_lo = timestamps[0]
        t_hi = timestamps[-1]
        copied = False
        for effect in effects:
            if effect.start > t_hi:
                break  # effects are kept sorted by start
            if effect.end < t_lo:
                continue
            mask = (timestamps >= effect.start) & (timestamps <= effect.end)
            if not copied:
                values = values.copy()
                copied = True
            if effect.mode == "shift":
                values[mask] += effect.magnitude
            elif effect.mode == "scale":
                values[mask] *= effect.magnitude
            elif effect.mode == "spike":
                # Exponential decay with a 10-minute time constant.
                dt = timestamps[mask] - effect.start
                values[mask] += effect.magnitude * np.exp(-dt / 600.0)
        return values

    def query_events(
        self, dataset: str, component: Component, t0: float, t1: float
    ) -> EventSeries | None:
        """The dataset's events for ``component`` over ``[t0, t1]``."""
        schema = self.schema(dataset)
        if schema.kind is not DataKind.EVENT:
            raise ValueError(f"{dataset} is not EVENT")
        if not self.is_active(dataset) or not schema.covers(component.kind):
            return None
        if t1 < t0:
            raise ValueError("query window end must be >= start")
        seed = self._series_seed(dataset, component.name)
        first = max(0, int(np.ceil(t0 / _EVENT_BIN)))
        last = int(np.floor(t1 / _EVENT_BIN))
        time_parts: list[np.ndarray] = []
        types: list[str] = []
        if last >= first:
            if self._shards is not None:
                self._shard_event_parts(
                    dataset, component.name, schema, seed,
                    first, last, time_parts, types,
                )
            else:
                for event_type, times, _ in background_event_parts(
                    schema, seed, first, last
                ):
                    if len(times):
                        time_parts.append(times)
                        types.extend([event_type] * len(times))
        self._append_burst_events(
            dataset, component.name, t0, t1, time_parts, types
        )
        return _assemble_events(time_parts, types)

    def _append_burst_events(
        self,
        dataset: str,
        component: str,
        t0: float,
        t1: float,
        time_parts: list[np.ndarray],
        types: list[str],
    ) -> None:
        """Burst effects add failure events deterministically."""
        for effect in self._effects.get((dataset, component), []):
            if effect.start >= t1:
                break  # effects are kept sorted by start
            lo = max(t0, effect.start)
            hi = min(t1, effect.end)
            if hi <= lo or effect.rate <= 0.0:
                continue
            n_events = max(1, int(round(effect.rate * (hi - lo) / _HOUR)))
            time_parts.append(np.linspace(lo, hi, n_events, endpoint=False))
            types.extend([effect.event_type] * n_events)

    def query_events_batch(
        self, dataset: str, components: list[Component], t0: float, t1: float
    ) -> list[EventSeries | None]:
        """Batched :meth:`query_events` over many components.

        Bit-identical per entry to the scalar query.  With shards
        enabled every entry assembles from chunk views; otherwise the
        Poisson bin counts of every component hash through one
        :func:`uniform_grid` call per event type, and the per-event
        time offsets of all components concatenate into one
        :func:`uniform_mixed` call — the per-component work that
        remains is array slicing.
        """
        schema = self.schema(dataset)
        if schema.kind is not DataKind.EVENT:
            raise ValueError(f"{dataset} is not EVENT")
        if t1 < t0:
            raise ValueError("query window end must be >= start")
        out: list[EventSeries | None] = [None] * len(components)
        if not self.is_active(dataset):
            return out
        covered = [
            (i, c) for i, c in enumerate(components) if schema.covers(c.kind)
        ]
        if not covered:
            return out
        first = max(0, int(np.ceil(t0 / _EVENT_BIN)))
        last = int(np.floor(t1 / _EVENT_BIN))
        time_parts: list[list[np.ndarray]] = [[] for _ in covered]
        types: list[list[str]] = [[] for _ in covered]
        if last >= first and self._shards is not None:
            names = [c.name for _, c in covered]
            seeds = [self._series_seed(dataset, name) for name in names]
            per_name = self._shard_event_chunks_batch(
                dataset, names, schema, seeds, first, last
            )
            size = self._shards.config.event_chunk
            for row, chunks in enumerate(per_name):
                _event_parts_from_chunks(
                    chunks, size, first, last, time_parts[row], types[row]
                )
        elif last >= first:
            indices = np.arange(first, last + 1, dtype=np.uint64)
            seeds = np.array(
                [self._series_seed(dataset, c.name) for _, c in covered],
                dtype=np.uint64,
            )
            for stream, (event_type, hourly_rate) in enumerate(
                sorted(schema.events.rates.items())
            ):
                lam = hourly_rate * _EVENT_BIN / _HOUR
                if lam == 0.0:
                    continue
                u = uniform_grid(seeds, indices, stream=stream + 1)
                counts = np.searchsorted(_poisson_cdf(lam), u)
                rows = np.flatnonzero(counts.any(axis=1))
                if rows.size == 0:
                    continue
                key_parts: list[np.ndarray] = []
                seed_parts: list[np.ndarray] = []
                bin_parts: list[np.ndarray] = []
                for row in rows:
                    nonzero = counts[row] > 0
                    bins = indices[nonzero]
                    per_bin = counts[row][nonzero]
                    total = int(per_bin.sum())
                    # Event j of a bin draws its offset at hash index
                    # ``bin + j``, exactly as the scalar query does.
                    rep_bins = np.repeat(bins, per_bin)
                    ends = np.cumsum(per_bin)
                    within = (
                        np.arange(total, dtype=np.uint64)
                        - np.repeat(ends - per_bin, per_bin).astype(np.uint64)
                    )
                    key_parts.append(rep_bins + within)
                    seed_parts.append(
                        np.full(total, seeds[row], dtype=np.uint64)
                    )
                    bin_parts.append(rep_bins)
                offsets = uniform_mixed(
                    np.concatenate(seed_parts),
                    np.concatenate(key_parts),
                    stream=1000 + stream,
                )
                pos = 0
                for row, rep_bins in zip(rows, bin_parts):
                    chunk = offsets[pos : pos + len(rep_bins)]
                    pos += len(rep_bins)
                    time_parts[row].append(
                        rep_bins.astype(float) * _EVENT_BIN + chunk * _EVENT_BIN
                    )
                    types[row].extend([event_type] * len(rep_bins))
        for row, (i, component) in enumerate(covered):
            self._append_burst_events(
                dataset, component.name, t0, t1, time_parts[row], types[row]
            )
            out[i] = _assemble_events(time_parts[row], types[row])
        return out

    # -- count queries -------------------------------------------------------

    def query_event_type_counts(
        self, dataset: str, component: Component, t0: float, t1: float
    ) -> dict[str, int] | None:
        """Per-type event counts over ``[t0, t1]``, without materializing events.

        Equals ``query_events(...).count_by_type()`` for every type with
        a nonzero count (schema types with zero occurrences are listed
        with count 0 here and omitted there).  Background counts come
        from the Poisson bins directly — via the per-chunk cumulative
        tables when shards are enabled — and burst effects contribute
        their exact deterministic event count, so no per-event offset
        hashing happens at all.  This is what the incremental feature
        engine and CPD+ consume: both only ever look at counts.
        """
        schema = self.schema(dataset)
        if schema.kind is not DataKind.EVENT:
            raise ValueError(f"{dataset} is not EVENT")
        if not self.is_active(dataset) or not schema.covers(component.kind):
            return None
        if t1 < t0:
            raise ValueError("query window end must be >= start")
        seed = self._series_seed(dataset, component.name)
        first = max(0, int(np.ceil(t0 / _EVENT_BIN)))
        last = int(np.floor(t1 / _EVENT_BIN))
        counts: dict[str, int] = {}
        if last >= first:
            if self._shards is not None:
                size = self._shards.config.event_chunk
                with self._shard_lock:
                    chunks = [
                        self._event_chunk(dataset, component.name, schema, seed, k)
                        for k in range(first // size, last // size + 1)
                    ]
                counts = _event_counts_from_chunks(chunks, size, first, last)
            else:
                indices = np.arange(first, last + 1, dtype=np.uint64)
                for stream, (event_type, hourly_rate) in enumerate(
                    sorted(schema.events.rates.items())
                ):
                    lam = hourly_rate * _EVENT_BIN / _HOUR
                    counts[event_type] = int(
                        poisson_counts(seed, indices, lam, stream=stream + 1).sum()
                    )
        self._add_burst_counts(dataset, component.name, t0, t1, counts)
        return counts

    def _add_burst_counts(
        self,
        dataset: str,
        component: str,
        t0: float,
        t1: float,
        counts: dict[str, int],
    ) -> None:
        """Burst effects: same arithmetic as _append_burst_events, minus
        the linspace — only the count matters here."""
        for effect in self._effects.get((dataset, component), []):
            if effect.start >= t1:
                break  # effects are kept sorted by start
            lo = max(t0, effect.start)
            hi = min(t1, effect.end)
            if hi <= lo or effect.rate <= 0.0:
                continue
            n_events = max(1, int(round(effect.rate * (hi - lo) / _HOUR)))
            counts[effect.event_type] = counts.get(effect.event_type, 0) + n_events

    def query_event_type_counts_batch(
        self, dataset: str, components: list[Component], t0: float, t1: float
    ) -> list[dict[str, int] | None]:
        """Batched :meth:`query_event_type_counts` (one entry per component).

        With shards enabled the covered components' chunks materialize
        together (one generator grid per missing chunk number); each
        entry is bit-identical to the scalar query's answer.
        """
        schema = self.schema(dataset)
        if schema.kind is not DataKind.EVENT:
            raise ValueError(f"{dataset} is not EVENT")
        if t1 < t0:
            raise ValueError("query window end must be >= start")
        if not self.is_active(dataset):
            return [None] * len(components)
        first = max(0, int(np.ceil(t0 / _EVENT_BIN)))
        last = int(np.floor(t1 / _EVENT_BIN))
        if self._shards is None or last < first:
            return [
                self.query_event_type_counts(dataset, component, t0, t1)
                if schema.covers(component.kind)
                else None
                for component in components
            ]
        out: list[dict[str, int] | None] = [None] * len(components)
        covered = [
            (i, c) for i, c in enumerate(components) if schema.covers(c.kind)
        ]
        if not covered:
            return out
        names = [c.name for _, c in covered]
        seeds = [self._series_seed(dataset, name) for name in names]
        per_name = self._shard_event_chunks_batch(
            dataset, names, schema, seeds, first, last
        )
        size = self._shards.config.event_chunk
        for (i, component), chunks in zip(covered, per_name):
            counts = _event_counts_from_chunks(chunks, size, first, last)
            self._add_burst_counts(dataset, component.name, t0, t1, counts)
            out[i] = counts
        return out

    # -- convenience -------------------------------------------------------

    def datasets_covering(self, component: Component) -> list[DatasetSchema]:
        """Active schemas that monitor this component's kind."""
        return [
            schema
            for name, schema in sorted(self._schemas.items())
            if name not in self._inactive and schema.covers(component.kind)
        ]
