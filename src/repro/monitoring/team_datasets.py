"""Monitoring datasets owned by teams other than PhyNet.

The paper's vision is a *collection* of Scouts (§4), each over its own
team's monitoring data.  Table 2 only inventories PhyNet's twelve
datasets; these are the synthetic equivalents for the other teams that
build Scouts in this reproduction (Storage, SLB, DNS, Database), sized
like their real-world counterparts (stamp diagnostics, VIP probes,
resolver monitors, query telemetry).
"""

from __future__ import annotations

from ..datacenter.components import ComponentKind
from .base import BaselineSpec, DataKind, DatasetSchema, EventSpec

__all__ = ["team_datasets", "TEAM_DATASET_NAMES"]

_SERVER = frozenset({ComponentKind.SERVER})
_CLUSTER = frozenset({ComponentKind.CLUSTER})


def team_datasets() -> list[DatasetSchema]:
    """Datasets for the non-PhyNet Scout-building teams."""
    return [
        DatasetSchema(
            name="disk_io_errors",
            kind=DataKind.EVENT,
            component_kinds=_SERVER,
            description="Disk IO error records collected by the storage team",
            events=EventSpec(rates={"io_error": 0.02}),
        ),
        DatasetSchema(
            name="storage_latency",
            kind=DataKind.TIME_SERIES,
            component_kinds=_SERVER,
            description="Storage stamp request latency per extent node (ms)",
            baseline=BaselineSpec(mean=5.0, std=0.5, diurnal_amp=0.5, floor=0.0),
        ),
        DatasetSchema(
            name="vip_probe_failures",
            kind=DataKind.EVENT,
            component_kinds=_CLUSTER,
            description="SLB health-probe failures per VIP pool",
            events=EventSpec(rates={"probe_failure": 0.05}),
        ),
        DatasetSchema(
            name="dns_query_timeouts",
            kind=DataKind.EVENT,
            component_kinds=_CLUSTER,
            description="Resolver query timeouts per zone",
            events=EventSpec(rates={"query_timeout": 0.04}),
        ),
        DatasetSchema(
            name="db_query_latency",
            kind=DataKind.TIME_SERIES,
            component_kinds=_SERVER,
            description="Database query latency per replica (ms)",
            baseline=BaselineSpec(mean=12.0, std=1.5, diurnal_amp=2.0, floor=0.0),
        ),
    ]


TEAM_DATASET_NAMES = tuple(schema.name for schema in team_datasets())
