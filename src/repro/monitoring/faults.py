"""Fault injection for the monitoring plane and Scout call path.

§6's deployment reality is that the monitoring systems a Scout pulls
from fail too — sometimes during the very incident being routed.  This
module is the test harness for that reality: a deterministic, seeded
wrapper around :class:`~repro.monitoring.store.MonitoringStore` that
injects faults on a reproducible schedule, plus the doubles the serving
resilience tests use (a fake clock and a scriptable flaky Scout).

Everything here is deterministic: failures come from fixed query
ordinals or a hash of (seed, ordinal), and injected latency advances a
:class:`FakeClock` instead of sleeping — a fault scenario replays
bit-identically in CI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .generators import series_seed, uniform_at

__all__ = [
    "TransientMonitoringError",
    "FakeClock",
    "FaultPlan",
    "FaultyStore",
    "FlakyScout",
]


class TransientMonitoringError(RuntimeError):
    """A monitoring pull failed in a (presumed) transient way.

    This is the retryable error class: :class:`~repro.serving.retry.
    RetryPolicy` retries it, anything else propagates immediately.
    """


class FakeClock:
    """A manually advanced clock, injectable wherever time is read.

    Calling the instance returns the current time, so it drops in for
    ``time.perf_counter``/``time.monotonic``; ``advance`` doubles as an
    injectable sleeper for :class:`~repro.serving.retry.RetryPolicy`.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot advance backwards")
        self.now += seconds


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, reproducible schedule of monitoring faults.

    Faults key off the wrapping store's 1-based query ordinal, so a plan
    replays identically for an identical query sequence:

    * ``fail_queries`` — raise on exactly these ordinals;
    * ``fail_first`` — raise on every ordinal ``<= fail_first``;
    * ``error_rate`` — raise intermittently, via a hash of
      ``(seed, ordinal)`` (deterministic, not an RNG stream);
    * ``latency_seconds`` — advance the store's fake clock by this much
      per query (models a slow monitor without real sleeping);
    * ``datasets`` — when set, only queries against these datasets are
      counted and faulted.
    """

    seed: int = 0
    error_rate: float = 0.0
    fail_queries: frozenset[int] = frozenset()
    fail_first: int = 0
    latency_seconds: float = 0.0
    datasets: frozenset[str] | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate <= 1.0:
            raise ValueError("error_rate must be in [0, 1]")

    def applies_to(self, dataset: str) -> bool:
        return self.datasets is None or dataset in self.datasets

    def should_fail(self, ordinal: int) -> bool:
        """Does query number ``ordinal`` (1-based) fail under this plan?"""
        if ordinal <= self.fail_first or ordinal in self.fail_queries:
            return True
        if self.error_rate <= 0.0:
            return False
        draw = uniform_at(
            series_seed(self.seed, "__faults__", "queries"),
            np.asarray([ordinal], dtype=np.uint64),
        )[0]
        return bool(draw < self.error_rate)


class FaultyStore:
    """A :class:`MonitoringStore` wrapper that injects planned faults.

    Query methods (scalar and batch) consult the :class:`FaultPlan`
    before delegating; every other attribute passes straight through to
    the wrapped store, so a ``FaultyStore`` drops in anywhere a store is
    accepted (feature builders, CPD+, ``load_scout``).
    """

    def __init__(
        self,
        inner,
        plan: FaultPlan,
        clock: FakeClock | None = None,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.clock = clock
        self.queries = 0
        self.injected_errors = 0

    def _gate(self, dataset: str) -> None:
        if not self.plan.applies_to(dataset):
            return
        self.queries += 1
        if self.clock is not None and self.plan.latency_seconds > 0:
            self.clock.advance(self.plan.latency_seconds)
        if self.plan.should_fail(self.queries):
            self.injected_errors += 1
            raise TransientMonitoringError(
                f"injected fault on query #{self.queries} ({dataset})"
            )

    def query_series(self, dataset, component, t0, t1):
        self._gate(dataset)
        return self.inner.query_series(dataset, component, t0, t1)

    def query_series_batch(self, dataset, components, t0, t1):
        self._gate(dataset)
        return self.inner.query_series_batch(dataset, components, t0, t1)

    def query_events(self, dataset, component, t0, t1):
        self._gate(dataset)
        return self.inner.query_events(dataset, component, t0, t1)

    def query_events_batch(self, dataset, components, t0, t1):
        self._gate(dataset)
        return self.inner.query_events_batch(dataset, components, t0, t1)

    def query_event_type_counts(self, dataset, component, t0, t1):
        self._gate(dataset)
        return self.inner.query_event_type_counts(dataset, component, t0, t1)

    def query_event_type_counts_batch(self, dataset, components, t0, t1):
        self._gate(dataset)
        return self.inner.query_event_type_counts_batch(
            dataset, components, t0, t1
        )

    def __getattr__(self, name):
        return getattr(self.inner, name)


class FlakyScout:
    """A scriptable Scout double for exercising every degradation mode.

    ``script`` is a sequence of per-call actions, consumed in order and
    followed by ``default`` forever after:

    * ``"ok"``    — return a healthy prediction;
    * ``"error"`` — raise :class:`TransientMonitoringError`;
    * ``"slow"``  — advance ``clock`` by ``slow_seconds`` (a deadline
      overrun under a fake-clocked manager), then answer.
    """

    def __init__(
        self,
        team: str,
        script: tuple[str, ...] = (),
        default: str = "ok",
        responsible: bool | None = True,
        confidence: float = 0.9,
        clock: FakeClock | None = None,
        slow_seconds: float = 10.0,
    ) -> None:
        self.team = team
        self.script = tuple(script)
        self.default = default
        self.responsible = responsible
        self.confidence = confidence
        self.clock = clock
        self.slow_seconds = slow_seconds
        self.calls = 0

    def predict(self, incident):
        # Imported here: monitoring must not import repro.core at module
        # scope (core.features imports this package).
        from ..core.scout import ScoutPrediction
        from ..core.selector import Route

        action = (
            self.script[self.calls]
            if self.calls < len(self.script)
            else self.default
        )
        self.calls += 1
        if action == "error":
            raise TransientMonitoringError(
                f"{self.team} scripted failure on call #{self.calls}"
            )
        if action == "slow" and self.clock is not None:
            self.clock.advance(self.slow_seconds)
        elif action not in ("ok", "slow"):
            raise ValueError(f"unknown FlakyScout action: {action!r}")
        return ScoutPrediction(
            incident_id=incident.incident_id,
            responsible=self.responsible,
            confidence=self.confidence,
            route=Route.SUPERVISED,
        )
