"""Monitoring data model.

The Scout framework recognizes exactly two basic data types (§5.1):

    "The data type can be one of TIME_SERIES or EVENT. Time-series
    variables are anything measured at a regular interval ... Events
    are data points that occur irregularly ... All monitoring data can
    be transformed into one of these two basic types."

A :class:`DatasetSchema` carries the metadata operators attach when
registering monitoring data: its type, which component kinds it covers,
and the optional *class tag* that marks datasets as combinable.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from ..datacenter.components import ComponentKind

__all__ = [
    "DataKind",
    "TimeSeries",
    "EventSeries",
    "BaselineSpec",
    "EventSpec",
    "DatasetSchema",
    "FailureEffect",
]


class DataKind(str, enum.Enum):
    """The two basic monitoring data types."""

    TIME_SERIES = "TIME_SERIES"
    EVENT = "EVENT"


@dataclass(frozen=True)
class TimeSeries:
    """Regularly-sampled values for one (dataset, component) pair."""

    timestamps: np.ndarray  # seconds, ascending
    values: np.ndarray

    def __post_init__(self) -> None:
        if len(self.timestamps) != len(self.values):
            raise ValueError("timestamps and values must be equal length")

    def __len__(self) -> int:
        return len(self.values)


@dataclass(frozen=True)
class EventSeries:
    """Irregular events for one (dataset, component) pair."""

    timestamps: np.ndarray  # seconds, ascending
    types: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.timestamps) != len(self.types):
            raise ValueError("timestamps and types must be equal length")

    def __len__(self) -> int:
        return len(self.timestamps)

    @cached_property
    def _type_counts(self) -> Counter:
        # Cached: feature builders ask for per-type counts once per
        # (dataset, type) pair and would otherwise re-scan the tuple.
        # cached_property writes to __dict__ directly, bypassing the
        # frozen-dataclass __setattr__ guard.
        return Counter(self.types)

    def count_by_type(self) -> dict[str, int]:
        return dict(self._type_counts)

    def count_of(self, event_type: str) -> int:
        """Occurrences of one event type (cached, O(1) after first call)."""
        return self._type_counts[event_type]


@dataclass(frozen=True)
class BaselineSpec:
    """Healthy-signal parameters for a TIME_SERIES dataset.

    ``value(t) = mean + diurnal_amp * sin(2πt/day) + N(0, std)``,
    clipped at ``floor`` when set (utilizations cannot go negative).
    """

    mean: float
    std: float
    diurnal_amp: float = 0.0
    floor: float | None = None
    interval: float = 300.0  # sampling period, seconds


@dataclass(frozen=True)
class EventSpec:
    """Healthy-noise parameters for an EVENT dataset.

    ``rates`` maps event type → expected events per hour per component
    under healthy operation (background noise the Scout must tolerate).
    """

    rates: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class DatasetSchema:
    """Registration metadata for one monitoring dataset (Table 2)."""

    name: str
    kind: DataKind
    component_kinds: frozenset[ComponentKind]
    description: str = ""
    class_tag: str | None = None
    baseline: BaselineSpec | None = None
    events: EventSpec | None = None

    def __post_init__(self) -> None:
        if self.kind is DataKind.TIME_SERIES and self.baseline is None:
            raise ValueError(f"{self.name}: TIME_SERIES needs a baseline spec")
        if self.kind is DataKind.EVENT and self.events is None:
            raise ValueError(f"{self.name}: EVENT needs an event spec")

    def covers(self, kind: ComponentKind) -> bool:
        return kind in self.component_kinds


@dataclass(frozen=True)
class FailureEffect:
    """A scenario-injected distortion of one (dataset, component) signal.

    Time-series modes:
      * ``"shift"``  — add ``magnitude`` over ``[start, end]`` (the
        stationary-distribution change CPD+ looks for);
      * ``"spike"``  — add an exponentially-decaying pulse from ``start``;
      * ``"scale"``  — multiply by ``magnitude``.
    Event mode:
      * ``"burst"``  — extra ``event_type`` events at ``rate``/hour.
    """

    dataset: str
    component: str
    start: float
    end: float
    mode: str = "shift"
    magnitude: float = 0.0
    event_type: str | None = None
    rate: float = 0.0

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("effect end must be >= start")
        if self.mode not in ("shift", "spike", "scale", "burst"):
            raise ValueError(f"unknown effect mode: {self.mode!r}")
        if self.mode == "burst" and not self.event_type:
            raise ValueError("burst effects need an event_type")
