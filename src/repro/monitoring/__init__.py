"""Monitoring substrate: Table 2 datasets, lazy signal store, effects."""

from .base import (
    BaselineSpec,
    DataKind,
    DatasetSchema,
    EventSeries,
    EventSpec,
    FailureEffect,
    TimeSeries,
)
from .datasets import PHYNET_DATASET_NAMES, phynet_datasets
from .faults import (
    FakeClock,
    FaultPlan,
    FaultyStore,
    FlakyScout,
    TransientMonitoringError,
)
from .generators import normal_at, poisson_counts, series_seed, uniform_at
from .store import MonitoringStore
from .team_datasets import TEAM_DATASET_NAMES, team_datasets

__all__ = [
    "BaselineSpec",
    "DataKind",
    "DatasetSchema",
    "EventSeries",
    "EventSpec",
    "FailureEffect",
    "FakeClock",
    "FaultPlan",
    "FaultyStore",
    "FlakyScout",
    "MonitoringStore",
    "PHYNET_DATASET_NAMES",
    "TimeSeries",
    "TransientMonitoringError",
    "normal_at",
    "phynet_datasets",
    "poisson_counts",
    "series_seed",
    "uniform_at",
    "TEAM_DATASET_NAMES",
    "team_datasets",
]
