"""Span-based tracing for the Scout pipeline.

One routing decision touches many stages — component extraction,
feature pulls, model selection, RF or CPD+ inference, composition —
and the serving layer needs to see where the time went per incident
(the Dapper lesson: aggregate counters cannot explain one slow
decision).  A :class:`Tracer` hands out :class:`Span`s:

* ``with tracer.span("features.build"):`` opens a span that nests
  under the caller's current span automatically (a ``contextvars``
  context variable carries the active span within a thread);
* cross-thread fan-out passes ``parent=`` explicitly — the incident
  manager opens the root span, and each pooled Scout call attaches its
  own child to it;
* span and trace ids are small sequential integers formatted as
  strings, **never** random: two identical runs produce identical ids,
  which is what lets tests byte-compare trace output.

Timestamps come from the injectable ``clock``.  Finished spans land in
a bounded in-memory exporter (a deque): a long-lived serving process
keeps the most recent ``max_spans`` spans and silently drops the
oldest, so tracing can stay always-on without growing without bound.
"""

from __future__ import annotations

import contextvars
import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = ["Span", "Tracer"]

# The active span of the *current thread of execution*.  Module-level on
# purpose: context variables cannot be pickled with their owner.
_CURRENT_SPAN: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


@dataclass
class Span:
    """One timed, named stage of a trace."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start: float
    end: float | None = None
    attributes: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Seconds from start to finish (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def finished(self) -> bool:
        return self.end is not None


class _ActiveSpan:
    """Context manager binding a span to the current execution context."""

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._token: contextvars.Token | None = None

    def __enter__(self) -> Span:
        self._token = _CURRENT_SPAN.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
        if exc_type is not None:
            self._span.attributes.setdefault("error", exc_type.__name__)
        self._tracer.finish(self._span)


class Tracer:
    """Creates spans and keeps a bounded buffer of finished ones."""

    def __init__(self, clock=time.perf_counter, max_spans: int = 2048) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.clock = clock
        self.max_spans = max_spans
        self._lock = threading.Lock()
        self._finished: deque[Span] = deque(maxlen=max_spans)
        self._trace_seq = 0
        self._span_seq = 0
        self.dropped = 0  # finished spans evicted by the bound

    # -- span lifecycle ----------------------------------------------------

    def start_span(
        self, name: str, parent: Span | None = None, **attributes
    ) -> Span:
        """Open a span; ``parent=None`` nests under the context span.

        A span with no parent (explicit or contextual) roots a new
        trace.  Ids are sequential, so a fixed workload always yields
        the same ids — randomness would break exposition diffing.
        """
        if parent is None:
            parent = _CURRENT_SPAN.get()
        with self._lock:
            self._span_seq += 1
            span_id = f"{self._span_seq:08d}"
            if parent is None:
                self._trace_seq += 1
                trace_id = f"trace-{self._trace_seq:08d}"
            else:
                trace_id = parent.trace_id
        return Span(
            name=name,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent.span_id if parent is not None else None,
            start=self.clock(),
            attributes=dict(attributes),
        )

    def finish(self, span: Span) -> None:
        """Stamp the end time and export the span (idempotent)."""
        if span.finished:
            return
        span.end = self.clock()
        with self._lock:
            if len(self._finished) == self._finished.maxlen:
                self.dropped += 1
            self._finished.append(span)

    def span(self, name: str, parent: Span | None = None, **attributes):
        """``with tracer.span("stage") as span:`` — the common entry."""
        return _ActiveSpan(self, self.start_span(name, parent, **attributes))

    @staticmethod
    def current() -> Span | None:
        """The active span of this thread of execution, if any."""
        return _CURRENT_SPAN.get()

    # -- export ------------------------------------------------------------

    @property
    def finished_spans(self) -> list[Span]:
        """Finished spans, oldest first (bounded by ``max_spans``)."""
        with self._lock:
            return list(self._finished)

    def trace(self, trace_id: str) -> list[Span]:
        """All finished spans of one trace, in span-id (creation) order."""
        return sorted(
            (s for s in self.finished_spans if s.trace_id == trace_id),
            key=lambda s: s.span_id,
        )

    def children(self, span: Span) -> list[Span]:
        return [
            s for s in self.trace(span.trace_id) if s.parent_id == span.span_id
        ]

    def render_trace(self, trace_id: str) -> str:
        """An indented text rendering of one trace (for logs/debugging)."""
        spans = self.trace(trace_id)
        by_parent: dict[str | None, list[Span]] = {}
        for span in spans:
            by_parent.setdefault(span.parent_id, []).append(span)
        known = {span.span_id for span in spans}
        lines: list[str] = []

        def walk(span: Span, depth: int) -> None:
            attrs = "".join(
                f" {k}={v}" for k, v in sorted(span.attributes.items())
            )
            lines.append(
                f"{'  ' * depth}{span.name} "
                f"({span.duration * 1000.0:.3f}ms){attrs}"
            )
            for child in by_parent.get(span.span_id, []):
                walk(child, depth + 1)

        # Roots: no parent, or a parent already evicted from the buffer.
        for span in spans:
            if span.parent_id is None or span.parent_id not in known:
                walk(span, 0)
        return "\n".join(lines)

    # -- pickling ----------------------------------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
