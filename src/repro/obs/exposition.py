"""Prometheus-style text exposition of a :class:`MetricsRegistry`.

``render_exposition`` produces the classic ``text/plain; version=0.0.4``
shape — ``# HELP`` / ``# TYPE`` headers, one ``name{labels} value``
sample per line, histograms expanded into ``_bucket``/``_sum``/
``_count`` series with a cumulative ``le`` label — with one extra
guarantee the reproduction needs: **byte-determinism**.  Families sort
by name, label sets sort by value tuple, and numbers format through a
single pure function, so two runs over identical workloads (under a
fake clock) render identical bytes.  CI diffs the snapshot artifact on
exactly this property.

``parse_exposition`` is the inverse used by tests and the CI gate: it
reads the text back into ``{family: {((label, value), ...): number}}``
and fails loudly on malformed lines, so an uploaded snapshot is proven
well-formed, not just present.
"""

from __future__ import annotations

import math
import re

from .metrics import Histogram, MetricsRegistry

__all__ = ["render_exposition", "parse_exposition"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _fmt_value(value: float) -> str:
    """One canonical rendering per float — the determinism lynchpin."""
    if isinstance(value, bool):  # pragma: no cover — defensive
        return "1" if value else "0"
    if isinstance(value, int) or (
        math.isfinite(value) and float(value).is_integer()
    ):
        return str(int(value))
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _escape(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _label_str(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape(str(labels[name]))}"' for name in sorted(labels)
    )
    return "{" + inner + "}"


def render_exposition(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text format (sorted, deterministic)."""
    lines: list[str] = []
    for family in registry.families():
        if not _NAME_RE.match(family.name):
            raise ValueError(f"invalid metric name: {family.name!r}")
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        if isinstance(family, Histogram):
            for labels, series in family.samples():
                cumulative = 0
                for bound, count in zip(
                    family.buckets, series.bucket_counts
                ):
                    cumulative += count
                    bucket_labels = dict(labels, le=_fmt_value(bound))
                    lines.append(
                        f"{family.name}_bucket{_label_str(bucket_labels)}"
                        f" {cumulative}"
                    )
                inf_labels = dict(labels, le="+Inf")
                lines.append(
                    f"{family.name}_bucket{_label_str(inf_labels)}"
                    f" {series.count}"
                )
                lines.append(
                    f"{family.name}_sum{_label_str(labels)}"
                    f" {_fmt_value(series.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_label_str(labels)} {series.count}"
                )
        else:
            for labels, value in family.samples():
                lines.append(
                    f"{family.name}{_label_str(labels)} {_fmt_value(value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def parse_exposition(
    text: str,
) -> dict[str, dict[tuple[tuple[str, str], ...], float]]:
    """Parse exposition text back into ``{family: {labels: value}}``.

    Histogram sub-series come back under their suffixed names
    (``*_bucket``, ``*_sum``, ``*_count``) — the parser validates
    shape, it does not reconstruct instrument objects.  Raises
    ``ValueError`` on any line that is neither a comment nor a
    well-formed sample.
    """
    out: dict[str, dict[tuple[tuple[str, str], ...], float]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        labels_text = match.group("labels") or ""
        labels: list[tuple[str, str]] = []
        consumed = 0
        for label_match in _LABEL_RE.finditer(labels_text):
            raw = label_match.group(2)
            unescaped = (
                raw.replace(r"\n", "\n").replace(r"\"", '"').replace(r"\\", "\\")
            )
            labels.append((label_match.group(1), unescaped))
            consumed = label_match.end()
        remainder = labels_text[consumed:].strip().strip(",")
        if remainder:
            raise ValueError(
                f"line {lineno}: malformed labels: {labels_text!r}"
            )
        raw_value = match.group("value")
        try:
            value = float(raw_value.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: malformed value: {raw_value!r}"
            ) from exc
        out.setdefault(match.group("name"), {})[tuple(sorted(labels))] = value
    return out
