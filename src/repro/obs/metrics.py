"""A deterministic metrics registry: counters, gauges, histograms.

The deployed Scout ran in suggestion mode so operators could *observe*
every would-be routing decision (§6); this module is the counting half
of that observability story.  Three deliberate departures from typical
metrics clients keep the reproduction's determinism contract intact:

* **No wall-clock reads inside instruments.**  Anything time-shaped
  (span durations, phase timings) is measured by the caller on an
  injectable clock and handed in as a plain value, so a test driving a
  :class:`~repro.monitoring.faults.FakeClock` produces bit-exact
  metric values.
* **Fixed-bucket histograms.**  Buckets are frozen at creation;
  p50/p90/p99 read-outs resolve to bucket upper bounds, a pure
  function of the recorded counts — two identical runs render
  byte-identical exposition text.
* **Sorted iteration everywhere.**  Families and label sets iterate in
  sorted order, never insertion order, so snapshots diff cleanly.

Instruments are thread-safe (the serving fan-out runs Scouts on a
thread pool) yet picklable: locks are dropped on ``__getstate__`` and
recreated on ``__setstate__``, because feature builders carrying a
registry reference are shipped to worker processes during parallel
dataset builds.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "BoundCounter",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QuantileReadout",
    "bucket_quantile",
]

# Prometheus-style latency buckets (seconds), extended to cover the
# multi-second deadline overruns the fault harness injects.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


@dataclass(frozen=True)
class QuantileReadout:
    """A bucket-quantile estimate plus whether the grid could resolve it.

    ``saturated`` is True when the requested rank landed in the implicit
    +Inf bucket — i.e. enough observations exceeded the largest finite
    bound that the read-out is a floor, not an estimate.  A saturated
    value must never be compared against a budget as if it were exact:
    the true quantile is somewhere above it.
    """

    value: float
    saturated: bool

    def __float__(self) -> float:
        return self.value


def bucket_quantile(
    buckets, bucket_counts, count: int, q: float
) -> QuantileReadout:
    """The shared bucket-walk behind every histogram quantile read-out.

    Pure function of the counts: callers diffing cumulative snapshots
    (interval p99s) and callers reading a live series both resolve
    through here, so the saturation rule lives in exactly one place.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    if count <= 0:
        return QuantileReadout(float("nan"), False)
    rank = max(1, math.ceil(q * count))
    cumulative = 0
    for i, bound in enumerate(buckets):
        cumulative += bucket_counts[i]
        if cumulative >= rank:
            return QuantileReadout(float(bound), False)
    # Rank fell in the implicit +Inf bucket: the grid cannot resolve it.
    return QuantileReadout(float(buckets[-1]), True)


class _Instrument:
    """Shared label plumbing for one metric family."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: tuple[str, ...]) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        self._series: dict[tuple[str, ...], object] = {}

    def _key(self, labels: dict[str, object]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def labels_of(self, key: tuple[str, ...]) -> dict[str, str]:
        return dict(zip(self.label_names, key))

    def keys(self) -> list[tuple[str, ...]]:
        with self._lock:
            return sorted(self._series)

    # -- pickling: locks cannot travel to dataset-build workers ------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


class BoundCounter:
    """A counter pre-bound to one label set — the hot-path handle.

    ``Counter.bind`` validates the labels once; ``inc`` is then just a
    lock and a dict update, cheap enough for per-monitoring-query call
    sites (the feature builder counts tens of thousands of pulls per
    dataset build).
    """

    __slots__ = ("_counter", "_key")

    def __init__(self, counter: "Counter", key: tuple[str, ...]) -> None:
        self._counter = counter
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        counter = self._counter
        with counter._lock:
            series = counter._series
            series[self._key] = series.get(self._key, 0.0) + amount


class Counter(_Instrument):
    """A monotonically increasing count per label set."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def bind(self, **labels) -> BoundCounter:
        """A pre-validated handle for one label set (see BoundCounter)."""
        return BoundCounter(self, self._key(labels))

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._series.get(key, 0.0))

    def samples(self) -> list[tuple[dict[str, str], float]]:
        with self._lock:
            items = sorted(self._series.items())
        return [(self.labels_of(key), float(v)) for key, v in items]

    def total(self) -> float:
        with self._lock:
            return float(sum(self._series.values()))


class Gauge(_Instrument):
    """A value that can go up and down per label set."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._series.get(key, 0.0))

    def samples(self) -> list[tuple[dict[str, str], float]]:
        with self._lock:
            items = sorted(self._series.items())
        return [(self.labels_of(key), float(v)) for key, v in items]


class _HistogramSeries:
    """Bucket counts + sum for one label set."""

    __slots__ = ("bucket_counts", "count", "sum")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * n_buckets  # finite buckets; +Inf implied
        self.count = 0
        self.sum = 0.0


class Histogram(_Instrument):
    """Fixed-bucket histogram with deterministic quantile read-out."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, label_names)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.buckets = tuple(float(b) for b in buckets)

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series.bucket_counts[i] += 1
                    break
            series.count += 1
            series.sum += value

    def _get(self, labels: dict) -> _HistogramSeries | None:
        key = self._key(labels)
        with self._lock:
            return self._series.get(key)

    def count(self, **labels) -> int:
        series = self._get(labels)
        return series.count if series else 0

    def sum(self, **labels) -> float:
        series = self._get(labels)
        return series.sum if series else 0.0

    def quantile(self, q: float, **labels) -> float:
        """The upper bound of the bucket holding the q-th observation.

        Deterministic by construction: a pure function of the recorded
        bucket counts, never of observation order.  An empty series is
        NaN (indistinguishable-from-zero is exactly the ambiguity this
        layer exists to remove).  Observations above the largest finite
        bucket clamp to that largest bound — use :meth:`quantile_ex`
        when the caller must distinguish a clamped read-out from a real
        one.
        """
        return self.quantile_ex(q, **labels).value

    def quantile_ex(self, q: float, **labels) -> QuantileReadout:
        """Like :meth:`quantile` but carrying the ``saturated`` flag."""
        series = self._get(labels)
        if series is None:
            if not 0.0 <= q <= 1.0:
                raise ValueError("q must be in [0, 1]")
            return QuantileReadout(float("nan"), False)
        return bucket_quantile(
            self.buckets, series.bucket_counts, series.count, q
        )

    def percentiles(self, **labels) -> dict[str, float]:
        """The standard p50/p90/p99 read-out for one label set.

        Includes ``saturated``: True when any of the three quantiles
        landed in the +Inf bucket and is therefore a floor, not an
        estimate.
        """
        readouts = {
            "p50": self.quantile_ex(0.50, **labels),
            "p90": self.quantile_ex(0.90, **labels),
            "p99": self.quantile_ex(0.99, **labels),
        }
        out: dict[str, float] = {k: r.value for k, r in readouts.items()}
        out["saturated"] = any(r.saturated for r in readouts.values())
        return out

    def samples(self) -> list[tuple[dict[str, str], _HistogramSeries]]:
        with self._lock:
            items = sorted(self._series.items())
        return [(self.labels_of(key), series) for key, series in items]

    def total_count(self) -> int:
        with self._lock:
            return sum(s.count for s in self._series.values())

    def total_sum(self) -> float:
        with self._lock:
            return float(sum(s.sum for s in self._series.values()))


class MetricsRegistry:
    """Get-or-create home for every instrument of one serving process.

    ``clock`` is the registry's time source for callers that want to
    measure durations consistently with the owning component (the
    incident manager passes its own injectable clock through, which is
    what keeps metric values bit-exact under a fake clock).  The
    registry itself never reads it.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self.clock = clock
        self._lock = threading.Lock()
        self._families: dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name, help, label_names, **kwargs):
        label_names = tuple(label_names)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = cls(name, help, label_names, **kwargs)
                self._families[name] = family
                return family
        if not isinstance(family, cls):
            raise ValueError(
                f"{name} already registered as a {family.kind}"
            )
        if family.label_names != label_names:
            raise ValueError(
                f"{name} already registered with labels {family.label_names}"
            )
        return family

    def counter(self, name: str, help: str = "", labels=()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels=()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels=(),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )

    def get(self, name: str) -> _Instrument | None:
        with self._lock:
            return self._families.get(name)

    def families(self) -> list[_Instrument]:
        """Every registered family, sorted by name."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> dict:
        """A plain-data dump (sorted, JSON-friendly) of every family."""
        out: dict = {}
        for family in self.families():
            if isinstance(family, Histogram):
                out[family.name] = {
                    "kind": family.kind,
                    "buckets": list(family.buckets),
                    "series": [
                        {
                            "labels": labels,
                            "count": series.count,
                            "sum": series.sum,
                            "bucket_counts": list(series.bucket_counts),
                        }
                        for labels, series in family.samples()
                    ],
                }
            else:
                out[family.name] = {
                    "kind": family.kind,
                    "series": [
                        {"labels": labels, "value": value}
                        for labels, value in family.samples()
                    ],
                }
        return out

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
