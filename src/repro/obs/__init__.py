"""Observability for the Scout pipeline: metrics, traces, exposition.

The deployed Scout ran in *suggestion mode* so operators could watch
what the model would have done (§6); this package is the watching
apparatus for the reproduction — a deterministic metrics registry
(:mod:`.metrics`), span-based tracing (:mod:`.tracing`), and a
Prometheus-style text exposition (:mod:`.exposition`).  Everything is
driven by an injectable clock and free of randomness, so instrumented
runs stay bit-reproducible: under a fake clock, two identical serving
runs render byte-identical exposition text.

:class:`Observability` bundles one registry and one tracer around a
shared clock; the incident manager owns one per process and threads it
into every registered Scout, its feature builder, and the training
framework, so a single ``manager.obs.render()`` shows the whole
pipeline.
"""

from __future__ import annotations

import time
from contextlib import nullcontext

from .exposition import parse_exposition, render_exposition
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .tracing import Span, Tracer

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Span",
    "Tracer",
    "maybe_span",
    "parse_exposition",
    "render_exposition",
]


class Observability:
    """One clock, one metrics registry, one tracer — a pipeline's eyes."""

    def __init__(self, clock=time.perf_counter, max_spans: int = 2048) -> None:
        self.clock = clock
        self.metrics = MetricsRegistry(clock=clock)
        self.trace = Tracer(clock=clock, max_spans=max_spans)

    def span(self, name: str, parent: Span | None = None, **attributes):
        """Shorthand for ``self.trace.span(...)``."""
        return self.trace.span(name, parent=parent, **attributes)

    def render(self) -> str:
        """The registry as Prometheus-style exposition text."""
        return render_exposition(self.metrics)


def maybe_span(obs: Observability | None, name: str, **attributes):
    """A span when observability is attached, a no-op otherwise.

    Instrumented components (Scout, feature builder, framework) carry
    ``obs=None`` by default so the hot path pays nothing until an
    incident manager (or a caller) threads an :class:`Observability`
    in.
    """
    if obs is None:
        return nullcontext()
    return obs.trace.span(name, **attributes)
