"""Model registry: versioned, integrity-checked Scout bundle storage.

The continuous-retraining story of §6 needs a storage tier between the
offline trainer and the online incident manager: :class:`ModelRegistry`
stores per-team version histories of Scout bundles, each paired with a
:class:`~repro.registry.manifest.BundleManifest` carrying a SHA-256
payload digest, config/feature-schema hashes, and training provenance.
``publish()`` runs the scoutlint pre-flight; ``fetch()`` verifies the
digest before unpickling; the ``ACTIVE`` pointer (plus the CLI
``promote`` flow and the manager's ``swap()``/``register_shadow()``)
closes the retrain → validate → hot-swap loop.
"""

from .manifest import (
    MANIFEST_VERSION,
    BundleManifest,
    config_digest,
    payload_digest,
    schema_digest,
)
from .registry import ModelRegistry

__all__ = [
    "MANIFEST_VERSION",
    "BundleManifest",
    "ModelRegistry",
    "config_digest",
    "payload_digest",
    "schema_digest",
]
