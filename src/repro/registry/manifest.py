"""Bundle manifests: the integrity and provenance sidecar of a version.

Every published Scout version carries a JSON manifest next to its
bundle file.  The manifest is what makes the registry's storage tier
*checkable*: the SHA-256 payload digest catches truncation and flipped
bits before a single pickle byte is interpreted, the config and
feature-schema hashes pin the model to the exact configuration and
feature layout it was trained with, and the training metadata records
where the bundle came from.  Manifests are plain sorted-key JSON so two
publishes of identical state render identical text.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from ..config.render import render_config
from ..config.spec import ScoutConfig

__all__ = [
    "MANIFEST_VERSION",
    "BundleManifest",
    "config_digest",
    "payload_digest",
    "schema_digest",
]

MANIFEST_VERSION = 1


def payload_digest(raw: bytes) -> str:
    """SHA-256 of the full on-disk bundle bytes (magic included)."""
    return hashlib.sha256(raw).hexdigest()


def config_digest(config: ScoutConfig) -> str:
    """SHA-256 over the canonical DSL rendering of ``config``.

    Canonical-text hashing means two semantically identical configs
    (however they were constructed) share a digest.  A config the DSL
    cannot render (a raw newline inside a pattern, say) falls back to
    the dataclass repr — still deterministic, just not cross-checkable
    against a rendered file.
    """
    try:
        text = render_config(config)
    except ValueError:
        text = repr(config)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def schema_digest(names: Iterable[str]) -> str:
    """SHA-256 over the ordered feature-schema column names."""
    joined = "\n".join(names)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class BundleManifest:
    """One published version's integrity + provenance record."""

    team: str
    version: int
    bundle_file: str
    sha256: str
    size_bytes: int
    bundle_format_version: int
    config_sha256: str
    schema_sha256: str
    n_features: int
    created_at: float
    manifest_version: int = MANIFEST_VERSION
    training: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "manifest_version": self.manifest_version,
            "team": self.team,
            "version": self.version,
            "bundle_file": self.bundle_file,
            "sha256": self.sha256,
            "size_bytes": self.size_bytes,
            "bundle_format_version": self.bundle_format_version,
            "config_sha256": self.config_sha256,
            "schema_sha256": self.schema_sha256,
            "n_features": self.n_features,
            "created_at": self.created_at,
            "training": dict(self.training),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_dict(cls, data: Mapping, path: str | Path = "<manifest>") -> "BundleManifest":
        version = data.get("manifest_version")
        if version != MANIFEST_VERSION:
            raise ValueError(
                f"{path}: manifest version {version!r} "
                f"(this build reads {MANIFEST_VERSION})"
            )
        try:
            return cls(
                team=str(data["team"]),
                version=int(data["version"]),
                bundle_file=str(data["bundle_file"]),
                sha256=str(data["sha256"]),
                size_bytes=int(data["size_bytes"]),
                bundle_format_version=int(data["bundle_format_version"]),
                config_sha256=str(data["config_sha256"]),
                schema_sha256=str(data["schema_sha256"]),
                n_features=int(data["n_features"]),
                created_at=float(data["created_at"]),
                training=dict(data.get("training", {})),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"{path}: malformed manifest ({exc})") from exc

    @classmethod
    def from_json(cls, text: str, path: str | Path = "<manifest>") -> "BundleManifest":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: manifest is not valid JSON ({exc})") from exc
        if not isinstance(data, dict):
            raise ValueError(f"{path}: manifest must be a JSON object")
        return cls.from_dict(data, path)
