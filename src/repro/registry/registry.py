"""The filesystem model registry: versioned, integrity-checked bundles.

Production Scouts retrain continuously (§6: Resource Central trains
offline and drops models into highly available storage; the online
tier picks them up).  :class:`ModelRegistry` is that storage tier for
the reproduction — a directory of per-team version histories::

    <root>/
      PhyNet/
        1.scout            # the bundle (persistence format)
        1.manifest.json    # digests + provenance (see manifest.py)
        2.scout
        2.manifest.json
        ACTIVE             # the version serving should load ("2")

Three gates stand between a training run and a served model:

* **Lint pre-flight.**  ``publish(lint=True)`` (the default) runs the
  scoutlint config analyzer against the Scout's monitoring store and
  refuses any config with ERROR findings — a misconfigured model never
  enters the registry, mirroring the ``register(lint=True)`` serving
  gate.
* **Digest verification.**  ``fetch()`` reads the manifest first,
  checks the bundle's size and SHA-256 against it, and only then
  unpickles.  A tampered, truncated, or bit-flipped bundle raises
  :class:`ValueError` naming the path *before* any pickle byte is
  interpreted.
* **Cross-checks.**  The decoded bundle must carry the manifest's team
  and hash to the manifest's config digest, so a manifest can never be
  paired with somebody else's bundle.

Versions are monotonically increasing integers assigned at publish
time.  The ``ACTIVE`` pointer decouples *published* from *serving*:
the first publish for a team activates itself, later ones wait for an
explicit :meth:`set_active` (the CLI ``promote`` flow runs a shadow
evaluation first).  All writes go through the same atomic
temp-file-and-rename discipline as :mod:`repro.core.persistence`.
"""

from __future__ import annotations

import time
from pathlib import Path

from ..core.persistence import (
    ScoutBundle,
    _bundle,
    _replace_bytes,
    bundle_bytes,
    parse_bundle,
)
from ..core.scout import Scout
from .manifest import (
    BundleManifest,
    config_digest,
    payload_digest,
    schema_digest,
)

__all__ = ["ModelRegistry"]


def _unwrap_store(store):
    """See through fault-injection shims to the real store."""
    return getattr(store, "inner", store)


class ModelRegistry:
    """A directory of versioned, digest-checked Scout bundles.

    Parameters
    ----------
    root:
        The registry directory (created on first publish).
    clock:
        Wall-clock source for manifest ``created_at`` stamps; inject a
        fake for byte-reproducible manifests.
    """

    def __init__(self, root: str | Path, clock=time.time) -> None:
        self.root = Path(root)
        self._clock = clock

    # -- layout ------------------------------------------------------------

    def _team_dir(self, team: str) -> Path:
        if not team or any(sep in team for sep in ("/", "\\", "..")):
            raise ValueError(f"invalid team name: {team!r}")
        return self.root / team

    def bundle_path(self, team: str, version: int) -> Path:
        return self._team_dir(team) / f"{int(version)}.scout"

    def manifest_path(self, team: str, version: int) -> Path:
        return self._team_dir(team) / f"{int(version)}.manifest.json"

    def _active_path(self, team: str) -> Path:
        return self._team_dir(team) / "ACTIVE"

    # -- enumeration -------------------------------------------------------

    def teams(self) -> list[str]:
        """Teams with at least one published version, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and self.versions(entry.name)
        )

    def versions(self, team: str) -> list[int]:
        """Published versions for ``team``, ascending."""
        team_dir = self._team_dir(team)
        if not team_dir.is_dir():
            return []
        found = []
        for entry in team_dir.glob("*.scout"):
            stem = entry.name[: -len(".scout")]
            if stem.isdigit() and self.manifest_path(team, int(stem)).is_file():
                found.append(int(stem))
        return sorted(found)

    def latest_version(self, team: str) -> int | None:
        versions = self.versions(team)
        return versions[-1] if versions else None

    def active_version(self, team: str) -> int | None:
        """The version serving should load (None before any publish)."""
        path = self._active_path(team)
        if not path.is_file():
            return None
        text = path.read_text().strip()
        if not text.isdigit():
            raise ValueError(f"{path}: malformed ACTIVE pointer {text!r}")
        return int(text)

    def resolve(self, team: str, version: int | None = None) -> int:
        """An explicit version, else the active one, else the latest."""
        if version is not None:
            if int(version) not in self.versions(team):
                raise ValueError(
                    f"{self.bundle_path(team, version)}: no such version "
                    f"(published: {self.versions(team) or 'none'})"
                )
            return int(version)
        resolved = self.active_version(team)
        if resolved is None:
            resolved = self.latest_version(team)
        if resolved is None:
            raise ValueError(f"no published versions for team {team!r}")
        return resolved

    def set_active(self, team: str, version: int) -> None:
        """Point serving at ``version`` (must exist and verify)."""
        self.verify(team, int(version))
        _replace_bytes(
            self._active_path(team), f"{int(version)}\n".encode("ascii")
        )

    # -- publish -----------------------------------------------------------

    def publish(
        self,
        scout: Scout,
        *,
        lint: bool = True,
        training: dict | None = None,
        activate: bool | str = "auto",
    ) -> BundleManifest:
        """Publish a fitted, attached Scout as the team's next version.

        ``lint=True`` (the default) runs the scoutlint pre-flight
        against the Scout's own monitoring store and raises
        :class:`~repro.lint.LintError` on any ERROR finding.
        ``activate`` is True/False, or ``"auto"`` — activate only when
        the team has no active version yet (the bootstrap publish).
        """
        store = _unwrap_store(getattr(scout.builder, "store", None))
        if lint:
            # Gate before bundling: a refused config never costs a
            # model serialization (and the error points at the config,
            # not at whatever pickling would have tripped on).
            self._lint(scout.config, store)
        return self._publish(
            _bundle(scout),
            schema_names=tuple(scout.builder.schema.names),
            store=store,
            lint=False,
            training=training,
            activate=activate,
        )

    def publish_bundle(
        self,
        bundle: ScoutBundle,
        store,
        *,
        lint: bool = True,
        training: dict | None = None,
        activate: bool | str = "auto",
    ) -> BundleManifest:
        """Publish a detached bundle (e.g. read from a ``train`` file).

        ``store`` is the monitoring store to lint against and to derive
        the feature schema from (a bundle carries no live environment).
        """
        from ..core.features import FeatureSchema

        schema = FeatureSchema(bundle.config, _unwrap_store(store))
        return self._publish(
            bundle,
            schema_names=tuple(schema.names),
            store=_unwrap_store(store),
            lint=lint,
            training=training,
            activate=activate,
        )

    @staticmethod
    def _lint(config, store) -> None:
        from ..lint import lint_config, require_clean

        require_clean(lint_config(config, store))

    def _publish(
        self,
        bundle: ScoutBundle,
        schema_names: tuple[str, ...],
        store,
        lint: bool,
        training: dict | None,
        activate: bool | str,
    ) -> BundleManifest:
        if lint:
            self._lint(bundle.config, store)
        team = bundle.team
        team_dir = self._team_dir(team)
        team_dir.mkdir(parents=True, exist_ok=True)
        version = (self.latest_version(team) or 0) + 1
        raw = bundle_bytes(bundle)
        manifest = BundleManifest(
            team=team,
            version=version,
            bundle_file=f"{version}.scout",
            sha256=payload_digest(raw),
            size_bytes=len(raw),
            bundle_format_version=bundle.format_version,
            config_sha256=config_digest(bundle.config),
            schema_sha256=schema_digest(schema_names),
            n_features=len(schema_names),
            created_at=float(self._clock()),
            training=dict(training or {}),
        )
        # Bundle first, manifest second: versions() requires both files,
        # so a crash between the two writes leaves no half-version.
        _replace_bytes(self.bundle_path(team, version), raw)
        _replace_bytes(
            self.manifest_path(team, version),
            manifest.to_json().encode("utf-8"),
        )
        if activate is True or (
            activate == "auto" and self.active_version(team) is None
        ):
            self.set_active(team, version)
        return manifest

    # -- fetch -------------------------------------------------------------

    def manifest(self, team: str, version: int | None = None) -> BundleManifest:
        version = self.resolve(team, version)
        path = self.manifest_path(team, version)
        return BundleManifest.from_json(path.read_text(), path)

    def _verified_bytes(
        self, team: str, version: int | None
    ) -> tuple[BundleManifest, bytes, Path]:
        version = self.resolve(team, version)
        manifest = self.manifest(team, version)
        path = self.bundle_path(team, version)
        try:
            raw = path.read_bytes()
        except OSError as exc:
            raise ValueError(f"{path}: cannot read bundle ({exc})") from exc
        if len(raw) != manifest.size_bytes:
            raise ValueError(
                f"{path}: bundle is {len(raw)} bytes but the manifest "
                f"records {manifest.size_bytes} (truncated or tampered)"
            )
        digest = payload_digest(raw)
        if digest != manifest.sha256:
            raise ValueError(
                f"{path}: SHA-256 digest mismatch (bundle corrupted or "
                f"tampered; manifest {manifest.sha256[:12]}…, "
                f"file {digest[:12]}…)"
            )
        return manifest, raw, path

    def verify(self, team: str, version: int | None = None) -> BundleManifest:
        """Digest-check a version without unpickling its payload."""
        manifest, _, _ = self._verified_bytes(team, version)
        return manifest

    def fetch(self, team: str, version: int | None = None) -> ScoutBundle:
        """Digest-verify, then decode, one published version.

        The SHA-256 check runs over the exact bytes that are parsed, so
        no pickle byte of a tampered or truncated bundle is ever
        interpreted.  Raises :class:`ValueError` naming the path on any
        integrity failure.
        """
        manifest, raw, path = self._verified_bytes(team, version)
        bundle = parse_bundle(raw, path)
        if bundle.team != manifest.team:
            raise ValueError(
                f"{path}: bundle is for team {bundle.team!r} but the "
                f"manifest records {manifest.team!r}"
            )
        if config_digest(bundle.config) != manifest.config_sha256:
            raise ValueError(
                f"{path}: bundle config does not hash to the manifest's "
                "config_sha256 (manifest/bundle mismatch)"
            )
        return bundle

    def load(
        self,
        team: str,
        topology,
        store,
        version: int | None = None,
        incremental: bool = False,
    ) -> Scout:
        """Fetch a verified version and attach it to a live environment."""
        from ..core.persistence import attach_bundle

        return attach_bundle(
            self.fetch(team, version), topology, store, incremental
        )
